//! Per-file analysis context shared by all rules.
//!
//! One pass over the token stream derives everything the rules match
//! against: which lines belong to `#[cfg(test)]` modules, which identifiers
//! were declared with order-sensitive or pointer types, which lines carry
//! code vs. only comments/attributes, and where inline waivers sit.

use crate::config::Config;
use crate::lexer::{lex, Lexed, Spanned, Token};
use std::collections::BTreeMap;

/// How an identifier was declared, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclKind {
    /// `HashMap` / `HashSet` — iteration order is unspecified.
    HashCollection,
    /// `f32` / `f64` (possibly nested, e.g. `Vec<f32>`).
    Float,
    /// `AtomicPtr` — publish/consume candidate.
    AtomicPtr,
}

/// Everything the rules need to know about one source file.
pub struct FileContext<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Lexer output.
    pub lexed: Lexed,
    /// Whether the whole file is test context (tests/, benches/ dirs).
    pub test_file: bool,
    /// Line ranges (inclusive) of `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Identifier declarations found in the file.
    pub decls: BTreeMap<String, DeclKind>,
    /// Lines that contain at least one code token.
    code_lines: Vec<bool>,
    /// Lines whose first code token is `#` (attribute lines).
    attr_lines: Vec<bool>,
    /// The active configuration.
    pub config: &'a Config,
}

impl<'a> FileContext<'a> {
    /// Lexes and analyzes `src`.
    pub fn new(rel: &str, src: &str, config: &'a Config) -> Self {
        let lexed = lex(src);
        let line_count = lexed.comments.len();
        let mut code_lines = vec![false; line_count];
        let mut attr_lines = vec![false; line_count];
        for t in &lexed.tokens {
            if t.line < line_count {
                if !code_lines[t.line] {
                    attr_lines[t.line] = t.tok == Token::Punct('#');
                }
                code_lines[t.line] = true;
            }
        }
        let test_ranges = find_test_ranges(&lexed.tokens);
        let decls = collect_decls(&lexed.tokens);
        Self {
            rel: rel.to_string(),
            lexed,
            test_file: config.is_test_path(rel),
            test_ranges,
            decls,
            code_lines,
            attr_lines,
            config,
        }
    }

    /// The tokens of the file.
    pub fn tokens(&self) -> &[Spanned] {
        &self.lexed.tokens
    }

    /// Whether `line` is inside test context (a test file or a
    /// `#[cfg(test)]` module).
    pub fn in_test(&self, line: usize) -> bool {
        self.test_file || self.test_ranges.iter().any(|&(s, e)| line >= s && line <= e)
    }

    /// Whether an inline waiver `// lint: allow(<slug>)` covers `line`
    /// (on the line itself or up to two lines above).
    pub fn has_waiver(&self, line: usize, slug: &str) -> bool {
        let needle = format!("lint: allow({slug})");
        for l in line.saturating_sub(2)..=line {
            if self.lexed.comment_on(l).contains(&needle) {
                return true;
            }
        }
        false
    }

    /// Whether any non-empty comment sits on `line` or within `lookback`
    /// lines above it (the justification-comment convention of the A-rules).
    pub fn has_comment_near(&self, line: usize, lookback: usize) -> bool {
        for l in line.saturating_sub(lookback)..=line {
            if self.lexed.comment_on(l).chars().any(|c| c.is_alphabetic()) {
                return true;
            }
        }
        false
    }

    /// Searches for a `SAFETY:` comment attached to the construct at `line`:
    /// a trailing comment on the line itself, or a comment block directly
    /// above it (attribute lines and doc comments may sit in between).
    /// Returns the justification text if found.
    pub fn safety_comment(&self, line: usize) -> Option<String> {
        if let Some(text) = extract_safety(self.lexed.comment_on(line)) {
            return Some(self.gather_safety_text(line, text));
        }
        let mut l = line;
        for _ in 0..12 {
            if l <= 1 {
                break;
            }
            l -= 1;
            let comment = self.lexed.comment_on(l);
            if let Some(text) = extract_safety(comment) {
                return Some(self.gather_safety_text(l, text));
            }
            let has_code = self.code_lines.get(l).copied().unwrap_or(false);
            let is_attr = self.attr_lines.get(l).copied().unwrap_or(false);
            let comment_only = !has_code && !comment.is_empty();
            let blank = !has_code && comment.is_empty();
            // Walk up through comment-only and attribute lines; any other
            // code line (or a blank line) detaches the comment block.
            if !(comment_only || is_attr) || blank {
                break;
            }
        }
        None
    }

    /// Concatenates the safety text starting at `line` with the contiguous
    /// comment-only lines that follow (a multi-line SAFETY argument).
    fn gather_safety_text(&self, line: usize, head: String) -> String {
        let mut text = head;
        let mut l = line + 1;
        while l < self.lexed.comments.len() {
            let has_code = self.code_lines.get(l).copied().unwrap_or(false);
            let comment = self.lexed.comment_on(l);
            if has_code || comment.is_empty() {
                break;
            }
            text.push(' ');
            text.push_str(comment.trim_start_matches('/').trim());
            l += 1;
        }
        text
    }
}

/// Extracts the text after `SAFETY:` (or a `# Safety` doc heading) from a
/// comment line.
fn extract_safety(comment: &str) -> Option<String> {
    if let Some(idx) = comment.find("SAFETY") {
        let rest = comment[idx + "SAFETY".len()..].trim_start();
        let rest = rest.strip_prefix("of all entries").unwrap_or(rest);
        let rest = rest.strip_prefix(':').unwrap_or(rest);
        return Some(rest.trim().to_string());
    }
    if comment.contains("# Safety") {
        return Some(String::new());
    }
    None
}

/// Finds line ranges of items annotated `#[cfg(test)]` (and `#[cfg(all(...,
/// test, ...))]`): the following braced item — usually `mod tests { ... }` —
/// is marked as test context.
fn find_test_ranges(tokens: &[Spanned]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok == Token::Punct('#')
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Token::Punct('[')))
        {
            // Scan the attribute body for `cfg` ... `test`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].tok {
                    Token::Punct('[') => depth += 1,
                    Token::Punct(']') => depth -= 1,
                    Token::Ident(n) if n == "cfg" => saw_cfg = true,
                    Token::Ident(n) if n == "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                // Skip further attributes, then find the item's braces.
                let mut k = j;
                while k < tokens.len() && tokens[k].tok == Token::Punct('#') {
                    k += 1; // '#'
                    let mut d = 0usize;
                    while k < tokens.len() {
                        match &tokens[k].tok {
                            Token::Punct('[') => d += 1,
                            Token::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Find the opening `{` (or a terminating `;` for brace-less
                // items like `#[cfg(test)] use ...;`).
                let start_line = tokens.get(k).map(|t| t.line).unwrap_or(tokens[i].line);
                let mut open = None;
                while k < tokens.len() {
                    match &tokens[k].tok {
                        Token::Punct('{') => {
                            open = Some(k);
                            break;
                        }
                        Token::Punct(';') => break,
                        _ => {}
                    }
                    k += 1;
                }
                if let Some(open_idx) = open {
                    if let Some(close_idx) = matching_brace(tokens, open_idx) {
                        ranges.push((tokens[i].line, tokens[close_idx].line));
                        i = close_idx + 1;
                        continue;
                    }
                } else {
                    let end_line = tokens.get(k).map(|t| t.line).unwrap_or(start_line);
                    ranges.push((tokens[i].line, end_line));
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Index of the `}` matching the `{` at `open`, if any.
pub fn matching_brace(tokens: &[Spanned], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Token::Punct('{') => depth += 1,
            Token::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`, if any.
pub fn matching_paren(tokens: &[Spanned], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Token::Punct('(') => depth += 1,
            Token::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Collects identifier declarations whose type (or constructor) names an
/// order-sensitive or pointer type. Covers `let x: T`, struct fields,
/// statics, fn params (`name: T` forms) and `let x = HashMap::new()` forms.
fn collect_decls(tokens: &[Spanned]) -> BTreeMap<String, DeclKind> {
    let mut decls = BTreeMap::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        let (name, after) = match (&tokens[i].tok, &tokens[i + 1].tok) {
            (Token::Ident(n), Token::Punct(':')) => {
                // Exclude `::` paths: `a::b` must not record `a`.
                if matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Token::Punct(':'))) {
                    i += 3;
                    continue;
                }
                (n.clone(), i + 2)
            }
            (Token::Ident(n), Token::Punct('=')) => {
                // `name = HashMap::new()` style (let-inference or reassign).
                // Exclude `==`, `=>`, `<=`, `>=` composites.
                if matches!(
                    tokens.get(i + 2).map(|t| &t.tok),
                    Some(Token::Punct('=')) | Some(Token::Punct('>'))
                ) {
                    i += 2;
                    continue;
                }
                (n.clone(), i + 2)
            }
            _ => {
                i += 1;
                continue;
            }
        };
        // Scan the type/constructor expression: stop at item boundaries.
        let mut kind = None;
        let mut j = after;
        let mut angle: i32 = 0;
        while j < tokens.len() && j < after + 24 {
            match &tokens[j].tok {
                Token::Punct('<') => angle += 1,
                Token::Punct('>') => angle -= 1,
                Token::Punct(';') | Token::Punct('{') | Token::Punct('}') => break,
                Token::Punct(',') | Token::Punct(')') if angle <= 0 => break,
                Token::Punct('(') => {
                    // Constructor call boundary: `HashMap::new(` — the names
                    // before the paren decide; stop here.
                    break;
                }
                Token::Ident(t) => match t.as_str() {
                    "HashMap" | "HashSet" => {
                        kind = Some(DeclKind::HashCollection);
                    }
                    "AtomicPtr" => {
                        kind = Some(DeclKind::AtomicPtr);
                    }
                    "f32" | "f64" if kind.is_none() => {
                        kind = Some(DeclKind::Float);
                    }
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        }
        if let Some(k) = kind {
            decls.insert(name, k);
        }
        i = after;
    }
    decls
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(src: &str, config: &'a Config) -> FileContext<'a> {
        FileContext::new("crates/x/src/lib.rs", src, config)
    }

    #[test]
    fn cfg_test_mod_is_test_region() {
        let cfg = Config::default();
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let c = ctx(src, &cfg);
        assert!(!c.in_test(1));
        assert!(c.in_test(3));
        assert!(c.in_test(4));
        assert!(!c.in_test(6));
    }

    #[test]
    fn decl_kinds_collected() {
        let cfg = Config::default();
        let src = "let a: HashMap<u32, u32> = HashMap::new();\n\
                   let b = std::collections::HashSet::new();\n\
                   static P: AtomicPtr<Kernels> = AtomicPtr::new(x);\n\
                   let total: f64 = 0.0;\n\
                   let v: Vec<u32> = Vec::new();\n";
        let c = ctx(src, &cfg);
        assert_eq!(c.decls.get("a"), Some(&DeclKind::HashCollection));
        assert_eq!(c.decls.get("b"), Some(&DeclKind::HashCollection));
        assert_eq!(c.decls.get("P"), Some(&DeclKind::AtomicPtr));
        assert_eq!(c.decls.get("total"), Some(&DeclKind::Float));
        assert_eq!(c.decls.get("v"), None);
    }

    #[test]
    fn paths_are_not_decls() {
        let cfg = Config::default();
        // `std::collections::HashMap` must not record `std` or `collections`.
        let c = ctx("use std::collections::HashMap;\n", &cfg);
        assert!(!c.decls.contains_key("std"));
        assert!(!c.decls.contains_key("collections"));
    }

    #[test]
    fn waiver_detected_on_and_above_line() {
        let cfg = Config::default();
        let src = "// lint: allow(unordered-iter)\nfor x in m {}\n\nfor y in m {} // lint: allow(unordered-iter)\n";
        let c = ctx(src, &cfg);
        assert!(c.has_waiver(2, "unordered-iter"));
        assert!(c.has_waiver(4, "unordered-iter"));
        assert!(!c.has_waiver(3, "thread-id"));
    }

    #[test]
    fn safety_comment_found_and_gathered() {
        let cfg = Config::default();
        let src = "// SAFETY: the pointer is valid because the caller blocks\n\
                   // until every outstanding reference is returned.\n\
                   unsafe { foo() }\n";
        let c = ctx(src, &cfg);
        let text = c.safety_comment(3).unwrap();
        assert!(text.contains("caller blocks"));
        assert!(text.contains("outstanding reference"));
    }

    #[test]
    fn safety_comment_not_borrowed_across_code() {
        let cfg = Config::default();
        let src = "// SAFETY: only covers the first block here.\n\
                   unsafe { a() }\n\
                   unsafe { b() }\n";
        let c = ctx(src, &cfg);
        assert!(c.safety_comment(2).is_some());
        assert!(c.safety_comment(3).is_none());
    }

    #[test]
    fn safety_comment_skips_attributes() {
        let cfg = Config::default();
        let src = "// SAFETY: callers checked the cpu feature at dispatch.\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn kernel() {}\n";
        let c = ctx(src, &cfg);
        assert!(c.safety_comment(3).is_some());
    }
}
