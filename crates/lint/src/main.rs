//! `pwlint` — command-line front end for `pathweaver-lint`.
//!
//! ```text
//! pwlint --workspace [--format human|json] [--config lint.toml] [--root DIR]
//!        [--baseline PATH] [--emit-lock-graph FILE]
//! pwlint FILE.rs [FILE.rs ...]
//! pwlint --explain D002 | --explain list
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config error. With
//! `--baseline`, the exit code reflects *regressions*: findings whose
//! per-rule count exceeds the committed baseline fail the run with the
//! offending rule IDs named on stderr, while grandfathered counts pass.

use pathweaver_lint::{config::Config, diagnostics, lint_files, lint_workspace, rules};
use std::path::PathBuf;

enum Format {
    Human,
    Json,
}

struct Args {
    workspace: bool,
    files: Vec<String>,
    format: Format,
    config_path: Option<PathBuf>,
    root: PathBuf,
    explain: Option<String>,
    baseline: Option<PathBuf>,
    lock_graph: Option<PathBuf>,
}

const USAGE: &str = "usage: pwlint (--workspace | FILE.rs ...) [--format human|json] \
                     [--config PATH] [--root DIR] [--baseline PATH] \
                     [--emit-lock-graph FILE] | --explain RULE|list";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        files: Vec::new(),
        format: Format::Human,
        config_path: None,
        root: PathBuf::from("."),
        explain: None,
        baseline: None,
        lock_graph: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format expects human|json, got {other:?}")),
                };
            }
            "--config" => {
                let p = it.next().ok_or("--config expects a path")?;
                args.config_path = Some(PathBuf::from(p));
            }
            "--root" => {
                let p = it.next().ok_or("--root expects a directory")?;
                args.root = PathBuf::from(p);
            }
            "--explain" => {
                let r = it.next().ok_or("--explain expects a rule id, slug, or `list`")?;
                args.explain = Some(r);
            }
            "--baseline" => {
                let p = it.next().ok_or("--baseline expects a path")?;
                args.baseline = Some(PathBuf::from(p));
            }
            "--emit-lock-graph" => {
                let p = it.next().ok_or("--emit-lock-graph expects a file path")?;
                args.lock_graph = Some(PathBuf::from(p));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn explain(query: &str) -> i32 {
    if query == "list" || query == "all" {
        for r in rules::RULES {
            println!("{}  {:<22} {}", r.id, r.slug, r.summary);
        }
        return 0;
    }
    match rules::find_rule(query) {
        Some(r) => {
            println!("{} [{}]", r.id, r.slug);
            println!("  {}", r.summary);
            println!();
            println!("  {}", r.rationale);
            println!();
            println!("  Waive a single site with `// lint: allow({})` (same line or up", r.slug);
            println!("  to two lines above), or a whole file under [waivers] in lint.toml.");
            0
        }
        None => {
            eprintln!("pwlint: unknown rule {query:?}; try `--explain list`");
            2
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(query) = &args.explain {
        std::process::exit(explain(query));
    }
    if !args.workspace && args.files.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let config_path = args.config_path.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let config = if config_path.is_file() {
        match Config::load(&config_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("pwlint: {e}");
                std::process::exit(2);
            }
        }
    } else if args.config_path.is_some() {
        eprintln!("pwlint: config file {} not found", config_path.display());
        std::process::exit(2);
    } else {
        Config::default()
    };

    let report = if args.workspace {
        lint_workspace(&args.root, &config)
    } else {
        // Normalize explicit paths to workspace-relative form.
        let rels: Vec<String> = args
            .files
            .iter()
            .map(|f| {
                let p = PathBuf::from(f);
                pathweaver_lint::workspace::relative(&p, &args.root)
                    .unwrap_or_else(|| f.replace('\\', "/"))
            })
            .collect();
        lint_files(&args.root, &config, &rels)
    };

    let rendered = match args.format {
        Format::Human => diagnostics::render_human(&report.findings, report.files_scanned),
        Format::Json => diagnostics::render_json(&report.findings, report.files_scanned),
    };
    print!("{rendered}");

    if let Some(path) = &args.lock_graph {
        if let Err(e) = std::fs::write(path, &report.lock_graph_dot) {
            eprintln!("pwlint: cannot write lock graph {}: {e}", path.display());
            std::process::exit(2);
        }
    }

    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pwlint: cannot read baseline {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        match diagnostics::baseline_exceedances(&report.findings, &text) {
            Ok(exceeded) if exceeded.is_empty() => std::process::exit(0),
            Ok(exceeded) => {
                for msg in &exceeded {
                    eprintln!("pwlint: regression vs baseline: {msg}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("pwlint: {e}");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(i32::from(!report.findings.is_empty()));
}
