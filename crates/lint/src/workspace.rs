//! Workspace file discovery.

use crate::config::Config;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under the configured scan roots, returning
/// workspace-relative `/`-separated paths in sorted (deterministic) order.
pub fn collect_files(root: &Path, config: &Config) -> Vec<String> {
    let mut out = Vec::new();
    for scan_root in &config.roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, root, config, &mut out);
        }
    }
    out.sort();
    out.dedup();
    out
}

fn walk(dir: &Path, root: &Path, config: &Config, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let Some(rel) = relative(&path, root) else { continue };
        if config.is_excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, config, out);
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
}

/// `path` relative to `root`, `/`-separated.
pub fn relative(path: &Path, root: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    Some(s.join("/"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_sorted_rs_files_honoring_excludes() {
        let base = std::env::temp_dir().join(format!("pwlint-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(base.join("crates/a/src")).unwrap();
        std::fs::create_dir_all(base.join("vendor/x")).unwrap();
        std::fs::write(base.join("crates/a/src/lib.rs"), "fn a() {}").unwrap();
        std::fs::write(base.join("crates/a/src/zz.rs"), "fn z() {}").unwrap();
        std::fs::write(base.join("crates/a/src/notes.txt"), "not rust").unwrap();
        std::fs::write(base.join("vendor/x/lib.rs"), "fn v() {}").unwrap();
        let config = Config::default();
        let files = collect_files(&base, &config);
        assert_eq!(files, vec!["crates/a/src/lib.rs", "crates/a/src/zz.rs"]);
        let _ = std::fs::remove_dir_all(&base);
    }
}
