//! A lightweight item parser on top of the lexer.
//!
//! The cross-file rules need symbol granularity — which function a token
//! belongs to, which type an `impl` block extends, which `const` items a file
//! defines — but nothing like full Rust parsing. This module walks the token
//! stream once, matching braces, and produces:
//!
//! - [`FnItem`]s: every `fn` with its name, the `impl` self-type it belongs
//!   to (if any), its 1-based line, and the token-index range of its body;
//! - [`ConstItem`]s: every `const NAME: …` item definition.
//!
//! Closures are not items; their bodies stay inside the enclosing function's
//! range, which is exactly what the panic-reachability analysis wants.
//! Nested `fn` items are reported separately and their ranges excluded from
//! the parent's direct-site scan by the caller.

use crate::context::matching_brace;
use crate::lexer::{Spanned, Token};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` self-type enclosing the fn (`Server` for `Server::new`),
    /// or `None` for free functions.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body, inclusive of both braces.
    pub body: (usize, usize),
}

/// One `const NAME: …` item definition.
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// The constant's name.
    pub name: String,
    /// 1-based line of the `const` keyword.
    pub line: usize,
}

/// Parsed items of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every fn with a body, in source order.
    pub fns: Vec<FnItem>,
    /// Every const item definition, in source order.
    pub consts: Vec<ConstItem>,
}

/// Parses the item structure out of a token stream.
pub fn parse_items(tokens: &[Spanned]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Stack of (self-type, body-close index) for enclosing impl blocks.
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(&(_, close)) = impls.last() {
            if i > close {
                impls.pop();
            } else {
                break;
            }
        }
        match ident(tokens, i) {
            Some("impl") => {
                if let Some((self_ty, open)) = parse_impl_header(tokens, i) {
                    if let Some(close) = matching_brace(tokens, open) {
                        impls.push((self_ty, close));
                        i = open + 1;
                        continue;
                    }
                }
                i += 1;
            }
            Some("fn") => {
                // `fn(` with no name is a fn-pointer type, not an item.
                let Some(name) = ident(tokens, i + 1) else {
                    i += 1;
                    continue;
                };
                match parse_fn_body(tokens, i + 2) {
                    Some((open, close)) => {
                        out.fns.push(FnItem {
                            name: name.to_string(),
                            qual: impls.last().map(|(t, _)| t.clone()),
                            line: tokens[i].line,
                            body: (open, close),
                        });
                        i += 2;
                    }
                    None => i += 2, // trait method declaration (`fn f(..);`)
                }
            }
            Some("const") => {
                // `const NAME: T = …;` — skip `const fn`, `*const T`, and
                // generic `<const N: usize>` params (preceded by `<` or `,`).
                let starred = i > 0 && punct(tokens, i - 1, '*');
                let generic = i > 0 && (punct(tokens, i - 1, '<') || punct(tokens, i - 1, ','));
                if let Some(name) = ident(tokens, i + 1) {
                    if !starred && !generic && name != "fn" && punct(tokens, i + 2, ':') {
                        out.consts.push(ConstItem { name: name.to_string(), line: tokens[i].line });
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Resolves an `impl` header starting at `impl_idx` to its self-type and the
/// index of the opening body brace. The self-type is the last path identifier
/// at angle-bracket depth 0 before the `{` (stopping at `where`), which
/// handles both `impl Foo<T>` and `impl Trait for Foo`.
fn parse_impl_header(tokens: &[Spanned], impl_idx: usize) -> Option<(String, usize)> {
    let mut angle: i32 = 0;
    let mut self_ty: Option<String> = None;
    let mut j = impl_idx + 1;
    while j < tokens.len() {
        match &tokens[j].tok {
            Token::Punct('<') => angle += 1,
            Token::Punct('>') => angle -= 1,
            Token::Punct('{') if angle <= 0 => {
                return self_ty.map(|t| (t, j));
            }
            Token::Punct(';') => return None,
            Token::Ident(n) if angle == 0 => {
                if n == "where" {
                    // The rest is bounds; the self-type is already decided.
                    let open = (j..tokens.len()).find(|&k| punct(tokens, k, '{'))?;
                    return self_ty.map(|t| (t, open));
                }
                if n != "for" && n != "dyn" && n != "mut" && n != "const" {
                    self_ty = Some(n.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Finds the body `{`…`}` of a fn whose name sits just before `sig_start`.
/// Returns `None` for body-less declarations (trait methods).
fn parse_fn_body(tokens: &[Spanned], sig_start: usize) -> Option<(usize, usize)> {
    let mut paren: i32 = 0;
    let mut j = sig_start;
    while j < tokens.len() {
        match &tokens[j].tok {
            Token::Punct('(') => paren += 1,
            Token::Punct(')') => paren -= 1,
            Token::Punct('{') if paren == 0 => {
                let close = matching_brace(tokens, j)?;
                return Some((j, close));
            }
            Token::Punct(';') if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

fn ident(tokens: &[Spanned], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Token::Ident(n)) => Some(n.as_str()),
        _ => None,
    }
}

fn punct(tokens: &[Spanned], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Token::Punct(p)) if *p == c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn free_fns_and_methods() {
        let src = "fn alpha() { beta(); }\n\
                   impl Server {\n    fn submit(&self) -> u32 { 1 }\n}\n\
                   impl Drop for Server {\n    fn drop(&mut self) {}\n}\n";
        let p = parse(src);
        let names: Vec<(String, Option<String>)> =
            p.fns.iter().map(|f| (f.name.clone(), f.qual.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("alpha".to_string(), None),
                ("submit".to_string(), Some("Server".to_string())),
                ("drop".to_string(), Some("Server".to_string())),
            ]
        );
    }

    #[test]
    fn generic_impls_and_where_clauses() {
        let src = "impl<T: Clone> Holder<T> where T: Send {\n    fn take(&self) {}\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].qual.as_deref(), Some("Holder"));
    }

    #[test]
    fn trait_decls_have_no_body() {
        let src = "trait Net {\n    fn connect(&self) -> u32;\n    fn close(&self) {}\n}\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["close"]);
    }

    #[test]
    fn consts_exclude_pointers_and_generics() {
        let src = "pub const HEADER_LEN: usize = 64;\n\
                   const fn helper() -> u32 { 1 }\n\
                   fn f(p: *const u8, q: &[u8]) {}\n\
                   fn g<const N: usize>() {}\n";
        let p = parse(src);
        let names: Vec<&str> = p.consts.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["HEADER_LEN"]);
    }

    #[test]
    fn body_ranges_cover_nested_braces() {
        let src = "fn outer() {\n    if x { y(); }\n    match z { _ => {} }\n}\nfn tail() {}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].line, 1);
        assert_eq!(p.fns[1].line, 5);
    }
}
