//! End-to-end fixture tests: scan known-bad, waived, and clean sources and
//! assert the exact (rule, line) findings.
//!
//! The fixtures directory itself is the lint root so that workspace-relative
//! paths carry no `tests/` segment (which would mark them as test context and
//! suppress the determinism/atomics rules).

use std::path::Path;

use pathweaver_lint::config::Config;
use pathweaver_lint::lint_files;

fn fixtures_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
}

fn scan(rels: &[&str]) -> Vec<(&'static str, usize)> {
    let mut config = Config::default();
    // The d004 fixture lives under `counted/`; everything else keeps the
    // default behaviour.
    config.counted_paths.push("counted/".into());
    let report = lint_files(
        fixtures_root(),
        &config,
        &rels.iter().map(|r| (*r).to_string()).collect::<Vec<_>>(),
    );
    let mut got: Vec<(&'static str, usize)> =
        report.findings.iter().map(|f| (f.rule, f.line)).collect();
    got.sort_unstable();
    got
}

#[test]
fn violations_fixture_reports_exact_rules_and_lines() {
    let got = scan(&["violations.rs"]);
    let expected = vec![
        ("A001", 49),
        ("A001", 55),
        ("A002", 55),
        ("D001", 8),
        ("D002", 15),
        ("D003", 22),
        ("O001", 59),
        ("O001", 60),
        ("O001", 61),
        ("U001", 25),
        ("U001", 28),
        ("U001", 33),
        ("U003", 39),
        ("U003", 42),
        ("U003", 43),
    ];
    assert_eq!(got, expected, "violations.rs finding set drifted");
}

#[test]
fn counted_path_fixture_trips_d004() {
    let got = scan(&["counted/d004.rs"]);
    assert_eq!(got, vec![("D004", 6), ("D004", 14)], "counted/d004.rs finding set drifted");
}

#[test]
fn d004_is_scoped_to_counted_paths() {
    // Same file scanned under a rel path that is NOT a counted path: the
    // float-accumulation rule must stay silent.
    let config = Config::default();
    let report = lint_files(fixtures_root(), &config, &["counted/d004.rs".to_string()]);
    assert!(report.findings.is_empty(), "D004 fired outside counted paths: {:?}", report.findings);
}

#[test]
fn inline_waivers_suppress_every_rule() {
    let got = scan(&["waived.rs"]);
    assert!(got.is_empty(), "waived.rs should scan clean, got {got:?}");
}

#[test]
fn clean_fixture_passes() {
    let got = scan(&["clean.rs"]);
    assert!(got.is_empty(), "clean.rs should scan clean, got {got:?}");
}

#[test]
fn per_file_config_waiver_suppresses() {
    let mut config = Config::default();
    config.waivers.insert("violations.rs".to_string(), vec!["wallclock-time".to_string()]);
    let report = lint_files(fixtures_root(), &config, &["violations.rs".to_string()]);
    assert!(
        report.findings.iter().all(|f| f.rule != "D001"),
        "file-level waiver failed to suppress D001"
    );
    assert!(
        report.findings.iter().any(|f| f.rule == "D002"),
        "file-level waiver over-suppressed other rules"
    );
}

#[test]
fn unreadable_file_reports_io_error() {
    let config = Config::default();
    let report = lint_files(fixtures_root(), &config, &["does_not_exist.rs".to_string()]);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "E000");
}

// ------------------------------------------------------- cross-file rules

/// Scans the `crossfile/` fixture tree with a config exercising every
/// cross-file family: P (hot paths), L (lock graph), W (format groups),
/// M (metric prefixes). Returns the full report so tests can pin both
/// sites and messages.
fn crossfile_report() -> pathweaver_lint::Report {
    use pathweaver_lint::config::FormatGroup;
    use pathweaver_lint::lint_files_full;

    let config = Config {
        hot_paths: vec!["crossfile/hot/".to_string()],
        metric_prefixes: vec!["fixture".to_string(), "phantom".to_string()],
        format_groups: vec![FormatGroup {
            name: "fixture".to_string(),
            consts: vec![
                "FIX_MAGIC".to_string(),
                "FIX_HEADER_LEN".to_string(),
                "FIX_KIND_DATA".to_string(),
            ],
            require: vec![
                "FIX_MAGIC".to_string(),
                "FIX_HEADER_LEN".to_string(),
                "FIX_KIND_DATA".to_string(),
            ],
            handled_in: vec!["crossfile/w/reader.rs".to_string()],
            defined_in: vec!["crossfile/w/writer.rs".to_string()],
        }],
        ..Config::default()
    };
    let rels: Vec<String> = [
        "crossfile/hot/entry.rs",
        "crossfile/hot/waived_entry.rs",
        "crossfile/util.rs",
        "crossfile/waived_util.rs",
        "crossfile/locks.rs",
        "crossfile/w/writer.rs",
        "crossfile/w/reader.rs",
        "crossfile/metrics.rs",
    ]
    .iter()
    .map(|r| (*r).to_string())
    .collect();
    lint_files_full(fixtures_root(), &config, &rels)
}

#[test]
fn crossfile_fixtures_report_exact_rules_and_lines() {
    let report = crossfile_report();
    let mut got: Vec<(&str, &str, usize)> =
        report.findings.iter().map(|f| (f.rule, f.file.as_str(), f.line)).collect();
    got.sort_unstable();
    let expected = vec![
        ("L001", "crossfile/locks.rs", 12),
        ("L002", "crossfile/locks.rs", 24),
        ("M001", "lint.toml", 0),
        ("M002", "crossfile/metrics.rs", 10),
        ("P001", "crossfile/hot/entry.rs", 16),
        ("P002", "crossfile/hot/entry.rs", 8),
        ("P003", "crossfile/hot/entry.rs", 12),
        ("W001", "crossfile/w/reader.rs", 4),
        ("W002", "crossfile/w/reader.rs", 1),
        ("W002", "crossfile/w/reader.rs", 1),
    ];
    assert_eq!(got, expected, "crossfile fixture finding set drifted");
}

#[test]
fn two_hop_taint_chain_names_every_hop() {
    let report = crossfile_report();
    let p002 = report
        .findings
        .iter()
        .find(|f| f.rule == "P002")
        .expect("the two-hop taint fixture must produce a P002");
    for hop in ["decode_row", "parse_header"] {
        assert!(p002.message.contains(hop), "P002 chain must name `{hop}`: {}", p002.message);
    }
}

#[test]
fn waiver_at_panic_site_cuts_the_taint_edge() {
    let report = crossfile_report();
    assert!(
        !report.findings.iter().any(|f| f.file.contains("waived")),
        "a waiver at the panic site must suppress the taint chain through it: {:?}",
        report.findings.iter().filter(|f| f.file.contains("waived")).collect::<Vec<_>>()
    );
}

#[test]
fn lock_cycle_report_names_both_locks_and_ships_dot() {
    let report = crossfile_report();
    let l001 = report.findings.iter().find(|f| f.rule == "L001").expect("lock cycle fixture");
    assert!(l001.message.contains('a') && l001.message.contains('b'), "{}", l001.message);
    assert!(
        report.lock_graph_dot.contains("digraph"),
        "the report must carry the lock graph in DOT form"
    );
}
