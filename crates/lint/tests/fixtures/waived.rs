//! Fixture: the same patterns as `violations.rs`, every site waived inline.
//! A scan of this file must produce zero findings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

pub fn wallclock() -> f64 {
    // lint: allow(wallclock-time)
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}

pub fn unordered() -> u64 {
    let m: HashMap<u32, u64> = HashMap::new();
    let mut total = 0u64;
    // lint: allow(unordered-iter)
    for v in m.values() {
        total += v;
    }
    total
}

pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id()) // lint: allow(thread-id)
}

pub unsafe fn missing_safety_fn() {} // lint: allow(safety-comment)

pub fn reinterpret(x: u32) -> f32 {
    // SAFETY: u32 and f32 have the same size and any bit pattern is a
    // valid f32, so the reinterpretation cannot produce invalid values.
    unsafe { std::mem::transmute(x) } // lint: allow(raw-pointer)
}

static STOP: AtomicBool = AtomicBool::new(false);

pub fn relaxed_no_comment() {
    STOP.store(true, Ordering::Relaxed); // lint: allow(relaxed-comment)
}

static PUBLISHED: AtomicPtr<u32> = AtomicPtr::new(std::ptr::null_mut());

pub fn relaxed_publish() {
    // lint: allow(relaxed-comment)
    // lint: allow(relaxed-publish)
    PUBLISHED.store(std::ptr::null_mut(), Ordering::Relaxed);
}

pub fn bad_metric_names(reg: &Registry) {
    reg.counter("BadName"); // lint: allow(metric-name)
}
