//! A panic site carrying a justified waiver: the waiver must suppress the
//! direct finding *and* every taint chain that passes through it.

pub fn waived_decode(bytes: &[u8]) -> u32 {
    // lint: allow(hot-panic) — fixture: documented invariant, not input.
    u32::from_le_bytes(bytes[0..4].try_into().unwrap())
}
