//! W-rule fixture: the canonical home of the fixture format's constants.

pub const FIX_MAGIC: u32 = 0xF1C5;
pub const FIX_HEADER_LEN: usize = 12;
pub const FIX_KIND_DATA: u32 = 1;

pub fn write_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&FIX_MAGIC.to_le_bytes());
    out.resize(FIX_HEADER_LEN, 0);
    out.extend_from_slice(&FIX_KIND_DATA.to_le_bytes());
}
