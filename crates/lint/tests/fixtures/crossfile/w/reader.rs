//! W-rule fixture: the reader redefines one constant instead of importing
//! it, and never references the other two it is required to handle.

pub const FIX_MAGIC: u32 = 0xF1C5;

pub fn read_header(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) == FIX_MAGIC
}
