//! Waiver fixture: this hot entry's only panic path is waived at the panic
//! site (../waived_util.rs), which must also cut the taint edge here.

pub fn waived_serve(bytes: &[u8]) -> u32 {
    waived_decode(bytes)
}
