//! P-rule fixture: hot-path panic reachability.
//!
//! `serve_row` itself is panic-free; its taint comes two calls away
//! (`decode_row` -> `parse_header` in ../util.rs). `pick` and `first`
//! carry direct violations.

pub fn serve_row(bytes: &[u8]) -> u32 {
    decode_row(bytes)
}

pub fn pick(table: &[u32], idx: u32) -> u32 {
    table[idx as usize]
}

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}
