//! Non-hot helpers reached from the hot P-rule fixture. The panic lives at
//! the bottom of a two-call chain, so only taint analysis can connect it to
//! the hot entry point.

pub fn decode_row(bytes: &[u8]) -> u32 {
    parse_header(bytes)
}

fn parse_header(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[0..4].try_into().unwrap())
}
