//! M-rule fixture: one metric name registered under two instrument kinds,
//! while the configured `phantom` prefix has no registration at all.

pub fn register_all(reg: &mut Registry) {
    reg.counter("fixture.requests");
    reg.gauge("fixture.depth");
}

pub fn register_conflicting(reg: &mut Registry) {
    reg.histogram("fixture.requests");
}
