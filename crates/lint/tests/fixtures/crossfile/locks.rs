//! L-rule fixture: two functions take the same pair of locks in opposite
//! orders (a classic deadlock), and one holds a guard across a blocking
//! channel receive.

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn a_then_b(p: &Pair) -> u32 {
    let ga = p.a.lock();
    let gb = p.b.lock();
    *ga + *gb
}

pub fn b_then_a(p: &Pair) -> u32 {
    let gb = p.b.lock();
    let ga = p.a.lock();
    *ga + *gb
}

pub fn held_across_recv(p: &Pair, rx: &Receiver<u32>) -> u32 {
    let g = p.a.lock();
    let v = rx.recv().unwrap_or(0);
    *g + v
}
