//! Fixture: one violation per token rule, at known line numbers.
//! Never compiled — scanned by `tests/fixtures_test.rs`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

pub fn wallclock() -> f64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}

pub fn unordered() -> u64 {
    let m: HashMap<u32, u64> = HashMap::new();
    let mut total = 0u64;
    for v in m.values() {
        total += v;
    }
    total
}

pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}

pub unsafe fn missing_safety_fn() {}

pub fn missing_safety_block() {
    unsafe { missing_safety_fn() }
}

pub fn vague_safety_block() {
    // SAFETY: ok
    unsafe { missing_safety_fn() }
}

pub fn reinterpret(x: u32) -> f32 {
    // SAFETY: u32 and f32 have the same size and any bit pattern is a
    // valid f32, so the reinterpretation cannot produce invalid values.
    unsafe { std::mem::transmute(x) }
}

pub fn pointer_type(x: &u32) -> *const u32 {
    x as *const u32
}

static STOP: AtomicBool = AtomicBool::new(false);

pub fn relaxed_no_comment() {
    STOP.store(true, Ordering::Relaxed);
}

static PUBLISHED: AtomicPtr<u32> = AtomicPtr::new(std::ptr::null_mut());

pub fn relaxed_publish() {
    PUBLISHED.store(std::ptr::null_mut(), Ordering::Relaxed);
}

pub fn bad_metric_names(reg: &Registry) {
    reg.counter("BadName");
    reg.gauge("unknown.prefix_metric");
    reg.histogram("cluster.RPC.attempts");
    reg.histogram("pipeline.stage0.wall_ns");
    reg.counter("cluster.node.requests");
}
