//! Fixture: float reductions inside parallel bodies (counted-path only).

pub fn reduce(xs: &[f32]) -> f32 {
    let mut total: f32 = 0.0;
    parallel_for(xs.len(), |i| {
        total += xs[i];
    });
    total
}

pub fn reduce_sum(xs: &[f32]) -> f32 {
    let mut acc: f32 = 0.0;
    parallel_for_spawning(xs.len(), |_i| {
        acc = xs.iter().map(|x| x * x).sum::<f32>();
    });
    acc
}
