//! Fixture: idiomatic, invariant-respecting code. Zero findings expected.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

pub fn ordered() -> u64 {
    let m: BTreeMap<u32, u64> = BTreeMap::new();
    let mut total = 0u64;
    for v in m.values() {
        total += v;
    }
    total
}

/// # Safety
///
/// Callers must guarantee `p` points to a live, properly aligned `u32`.
pub unsafe fn deref(p: &u32) -> u32 {
    // SAFETY: the caller contract above guarantees `p` is valid for reads
    // for the lifetime of this call, so the copy cannot fault.
    unsafe { std::ptr::read(p) }
}

static STOP: AtomicBool = AtomicBool::new(false);

pub fn request_stop() {
    // Relaxed: best-effort cancellation flag — readers only ever observe it
    // to exit early, never to synchronize data.
    STOP.store(true, Ordering::Relaxed);
}

pub fn good_metric_names(reg: &Registry) {
    reg.counter("pipeline.stage0.batches_total");
    reg.gauge("gpu.mem.resident_bytes");
    reg.histogram("search.query.wall_ns");
    reg.counter("cluster.failovers");
    reg.gauge("cluster.health.alive");
}
