//! 1-bit direction codes (paper §3.3, §4).
//!
//! Direction-guided selection approximates the *direction* of an edge
//! `src -> dst` by the sign of every coordinate of `dst - src`, packing one
//! bit per coordinate into `u32` words (bit set ⇔ coordinate increases).
//! At search time the same code is computed for `query - visiting_node`, and
//! neighbors are ranked by how many sign bits match: a neighbor whose edge
//! points mostly "towards the query" keeps more matching bits. Matching is a
//! XOR + popcount per word — orders of magnitude cheaper than reading the
//! neighbor's full `d`-dimensional vector for an exact distance.

/// Returns the number of `u32` words needed to hold `dim` sign bits.
#[inline]
pub const fn sign_code_words(dim: usize) -> usize {
    dim.div_ceil(32)
}

/// Computes the packed sign code of `to - from` into `out`.
///
/// Bit `d` of the code is 1 iff `to[d] > from[d]`. Bits beyond `dim` stay 0,
/// so codes of equal `dim` are directly comparable word-by-word.
///
/// Forwards to the runtime-dispatched SIMD kernel (see [`crate::simd`]):
/// SSE2/AVX2 compare-and-movemask or NEON compare-and-weighted-add, all
/// producing identical codes to the scalar loop (including on NaN, where the
/// ordered `>` comparison is false on every path).
///
/// # Panics
///
/// Panics if `from.len() != to.len()` or `out` is shorter than
/// [`sign_code_words`]`(dim)`.
pub fn sign_code(from: &[f32], to: &[f32], out: &mut [u32]) {
    crate::simd::active_kernels().sign_code(from, to, out);
}

/// Counts matching direction bits between two codes over `dim` dimensions.
///
/// Matching bits = `dim - popcount(a XOR b)` restricted to the `dim` valid
/// bits; both codes must have been produced with the same `dim` (so their
/// padding bits are both zero and never count as mismatches).
#[inline]
pub fn hamming_matches(a: &[u32], b: &[u32], dim: usize) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut mismatches = 0u32;
    for (x, y) in a.iter().zip(b) {
        mismatches += (x ^ y).count_ones();
    }
    u32::try_from(dim).expect("dimension fits in u32") - mismatches
}

/// A reusable buffer holding one packed sign code.
///
/// Avoids per-iteration allocation inside the search kernel: the kernel
/// computes the query-direction code once per visited node into this buffer.
#[derive(Debug, Clone)]
pub struct SignCodeBuf {
    dim: usize,
    words: Vec<u32>,
}

impl SignCodeBuf {
    /// Creates a zeroed code buffer for `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        Self { dim, words: vec![0; sign_code_words(dim)] }
    }

    /// Returns the dimensionality this buffer encodes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Recomputes the buffer as the sign code of `to - from`.
    pub fn encode(&mut self, from: &[f32], to: &[f32]) {
        sign_code(from, to, &mut self.words);
    }

    /// Returns the packed words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Counts matching bits against another packed code of the same `dim`.
    #[inline]
    pub fn matches(&self, other: &[u32]) -> u32 {
        hamming_matches(&self.words, other, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_rounding() {
        assert_eq!(sign_code_words(1), 1);
        assert_eq!(sign_code_words(32), 1);
        assert_eq!(sign_code_words(33), 2);
        assert_eq!(sign_code_words(96), 3);
        assert_eq!(sign_code_words(960), 30);
    }

    #[test]
    fn encodes_signs() {
        let from = [0.0f32, 0.0, 0.0, 0.0];
        let to = [1.0f32, -1.0, 0.0, 2.0];
        let mut code = [0u32; 1];
        sign_code(&from, &to, &mut code);
        // Bits 0 and 3 set (strictly increasing coords only).
        assert_eq!(code[0], 0b1001);
    }

    #[test]
    fn identical_codes_fully_match() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        let mut ca = vec![0u32; sign_code_words(100)];
        let mut cb = vec![0u32; sign_code_words(100)];
        sign_code(&a, &b, &mut ca);
        sign_code(&a, &b, &mut cb);
        assert_eq!(hamming_matches(&ca, &cb, 100), 100);
    }

    #[test]
    fn opposite_directions_fully_mismatch() {
        let from = vec![0.0f32; 64];
        let up: Vec<f32> = vec![1.0; 64];
        let down: Vec<f32> = vec![-1.0; 64];
        let mut cu = vec![0u32; 2];
        let mut cd = vec![0u32; 2];
        sign_code(&from, &up, &mut cu);
        sign_code(&from, &down, &mut cd);
        assert_eq!(hamming_matches(&cu, &cd, 64), 0);
    }

    #[test]
    fn aligned_neighbor_outranks_misaligned() {
        // Query is "up and right" of the node; the neighbor pointing the same
        // way must score more matching bits than one pointing away.
        let node = [0.0f32, 0.0, 0.0, 0.0];
        let query = [1.0f32, 1.0, 1.0, 1.0];
        let good = [0.5f32, 0.6, 0.4, 0.7];
        let bad = [-0.5f32, -0.2, -0.9, 0.1];
        let mut cq = SignCodeBuf::new(4);
        cq.encode(&node, &query);
        let mut cg = vec![0u32; 1];
        let mut cb = vec![0u32; 1];
        sign_code(&node, &good, &mut cg);
        sign_code(&node, &bad, &mut cb);
        assert!(cq.matches(&cg) > cq.matches(&cb));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut out = [0u32; 1];
        sign_code(&[0.0], &[0.0, 1.0], &mut out);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn matches_bounded_by_dim(
            v in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0), 1..200)
        ) {
            let dim = v.len();
            let from: Vec<f32> = v.iter().map(|t| t.0).collect();
            let a: Vec<f32> = v.iter().map(|t| t.1).collect();
            let b: Vec<f32> = v.iter().map(|t| t.2).collect();
            let mut ca = vec![0u32; sign_code_words(dim)];
            let mut cb = vec![0u32; sign_code_words(dim)];
            sign_code(&from, &a, &mut ca);
            sign_code(&from, &b, &mut cb);
            let m = hamming_matches(&ca, &cb, dim);
            let dim32 = u32::try_from(dim).unwrap();
            prop_assert!(m <= dim32);
            // Self-match is always exactly dim.
            prop_assert_eq!(hamming_matches(&ca, &ca, dim), dim32);
        }

        #[test]
        fn padding_bits_never_mismatch(dim in 1usize..70) {
            // Two arbitrary codes of the same dim: mismatches can be at most dim,
            // i.e. matches is never negative (would underflow in u32).
            let from: Vec<f32> = vec![0.0; dim];
            let to_a: Vec<f32> = (0..dim).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
            let to_b: Vec<f32> = (0..dim).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
            let mut ca = vec![0u32; sign_code_words(dim)];
            let mut cb = vec![0u32; sign_code_words(dim)];
            sign_code(&from, &to_a, &mut ca);
            sign_code(&from, &to_b, &mut cb);
            let m = hamming_matches(&ca, &cb, dim) as usize;
            prop_assert!(m <= dim);
        }
    }
}
