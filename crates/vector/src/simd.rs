//! Runtime-dispatched SIMD distance kernels.
//!
//! Every claim in PathWeaver is denominated in distance computations, so the
//! wall-clock cost of one `l2_squared` call is the single biggest lever on
//! host-side throughput. This module provides explicit-SIMD implementations
//! of the kernel primitives — squared-L2, inner product, the 4-row blocked
//! squared-L2 used by the gather-distance kernels, sign-bit code
//! construction, and the int8 code-space distance of the quantized traversal
//! tier — selected once at startup from the CPU's capabilities:
//!
//! - **AVX2 (+FMA detected)** and **SSE2** on `x86_64`,
//! - **NEON** on `aarch64`,
//! - the 4-accumulator **scalar** loops everywhere else (and as the
//!   universal fallback).
//!
//! # The bitwise-identity invariant
//!
//! The simulated-GPU clock is derived from operation counters, and the
//! search kernel's convergence checks feed back into those counters; any
//! change in a single distance bit could change a queue insertion, an
//! iteration count, and ultimately every simulated number in the paper
//! harness. The SIMD paths therefore keep the **exact lane structure of the
//! scalar kernels**:
//!
//! - One vector lane per scalar accumulator `s0..s3`: lane `j` accumulates
//!   `d[4i+j]²` with a separate multiply and add per step, exactly like the
//!   scalar `s_j += d_j * d_j`. Fused multiply-add is deliberately **not**
//!   used even when FMA is available — fusing changes the rounding.
//! - The AVX2 paths widen to two interleaved `f32x4` groups (two consecutive
//!   dimension chunks of one pair, or two rows of the blocked kernel) whose
//!   partial sums are folded back in the scalar program order.
//! - The horizontal reduce extracts lanes and sums them in the scalar order
//!   `s0 + s1 + s2 + s3 + tail` (left-associated), never with `haddps`-style
//!   pairwise trees.
//!
//! Under IEEE-754 every path then performs the identical operation sequence
//! per output, so results are **bitwise identical** across dispatch levels —
//! verified by the `simd_identity` property tests.
//!
//! # Dispatch
//!
//! [`active_kernels`] resolves the kernel table once (an atomic pointer, so
//! the per-call overhead is one relaxed load and an indirect call). The
//! environment variable `PATHWEAVER_SIMD=scalar|sse2|avx2|neon` overrides
//! detection for testing; a level the CPU cannot run falls back to scalar
//! with a warning. Benchmarks and tests can also swap the table at runtime
//! via [`set_simd_level`] — safe because every level returns bitwise-equal
//! results.

use crate::matrix::VectorSet;
use std::sync::atomic::{AtomicPtr, Ordering};

/// A SIMD instruction-set level the kernels can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable 4-accumulator scalar loops (universal fallback).
    Scalar,
    /// 128-bit SSE2 (baseline on every `x86_64`).
    Sse2,
    /// 256-bit AVX2; requires FMA to be present as well (the detection gate
    /// matches real deployments), although fused ops are never emitted — see
    /// the module docs on bitwise identity.
    Avx2,
    /// 128-bit NEON (baseline on every `aarch64`).
    Neon,
}

impl SimdLevel {
    /// Every level, strongest-last.
    pub const ALL: [SimdLevel; 4] =
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Neon, SimdLevel::Avx2];

    /// Lower-case name, matching the `PATHWEAVER_SIMD` syntax.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// Parses a `PATHWEAVER_SIMD` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            "neon" => Some(SimdLevel::Neon),
            _ => None,
        }
    }

    /// Whether this host can execute the level.
    pub fn is_supported(self) -> bool {
        // Under Miri only the scalar path runs: vendor intrinsics are not
        // interpretable, and bitwise identity means scalar covers the
        // semantics of every level.
        if cfg!(miri) {
            return matches!(self, SimdLevel::Scalar);
        }
        match self {
            SimdLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "aarch64")]
            SimdLevel::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// The strongest level this host supports.
    pub fn detect() -> Self {
        if cfg!(miri) {
            return SimdLevel::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if SimdLevel::Avx2.is_supported() {
                return SimdLevel::Avx2;
            }
            return SimdLevel::Sse2;
        }
        #[cfg(target_arch = "aarch64")]
        {
            return SimdLevel::Neon;
        }
        #[allow(unreachable_code)]
        SimdLevel::Scalar
    }

    /// All levels this host supports (scalar first).
    pub fn available() -> Vec<Self> {
        Self::ALL.into_iter().filter(|l| l.is_supported()).collect()
    }
}

/// A resolved table of kernel entry points for one [`SimdLevel`].
///
/// Obtain one through [`active_kernels`] (the dispatched level) or
/// [`kernels_for`] (a specific level, for A/B benchmarking and identity
/// tests). All tables are `'static`; all levels return bitwise-identical
/// results.
pub struct Kernels {
    level: SimdLevel,
    l2_squared: fn(&[f32], &[f32]) -> f32,
    dot: fn(&[f32], &[f32]) -> f32,
    l2_squared_x4: fn([&[f32]; 4], &[f32]) -> [f32; 4],
    sign_code: fn(&[f32], &[f32], &mut [u32]),
    code_l2_squared: fn(&[i8], &[i8]) -> u32,
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels").field("level", &self.level).finish()
    }
}

impl Kernels {
    /// The instruction-set level of this table.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// Squared L2 distance between two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn l2_squared(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "l2_squared requires equal-length vectors");
        (self.l2_squared)(a, b)
    }

    /// Inner product of two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot requires equal-length vectors");
        (self.dot)(a, b)
    }

    /// Four simultaneous squared-L2 distances against one query, bitwise
    /// equal to four [`Kernels::l2_squared`] calls.
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from the query length.
    #[inline]
    pub fn l2_squared_x4(&self, rows: [&[f32]; 4], query: &[f32]) -> [f32; 4] {
        for r in &rows {
            assert_eq!(r.len(), query.len(), "l2_squared_x4 requires equal-length vectors");
        }
        (self.l2_squared_x4)(rows, query)
    }

    /// Packed sign code of `to - from` (see [`crate::signbit::sign_code`]).
    ///
    /// # Panics
    ///
    /// Panics if `from.len() != to.len()` or `out` is shorter than
    /// [`crate::signbit::sign_code_words`]`(dim)`.
    #[inline]
    pub fn sign_code(&self, from: &[f32], to: &[f32], out: &mut [u32]) {
        assert_eq!(from.len(), to.len(), "sign_code length mismatch");
        let words = crate::signbit::sign_code_words(from.len());
        assert!(out.len() >= words, "sign code buffer too small");
        (self.sign_code)(from, to, out);
    }

    /// Integer code-space squared distance between two equal-length `i8`
    /// code slices: `Σ (a[i] - b[i])²`, accumulated in 32-bit integer lanes.
    ///
    /// This is the quantized-traversal distance primitive (see
    /// [`crate::quantize::QuantizedSet`]). Integer arithmetic is exact, so
    /// every dispatch level returns the identical value by construction; the
    /// `simd_identity` property tests pin it anyway.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or exceed 65 536 codes (the
    /// 32-bit accumulators are sized for vector dimensionalities, where the
    /// worst-case sum `len · 254²` must stay below 2³²).
    #[inline]
    pub fn code_l2_squared(&self, a: &[i8], b: &[i8]) -> u32 {
        assert_eq!(a.len(), b.len(), "code_l2_squared requires equal-length code slices");
        assert!(a.len() <= 1 << 16, "code_l2_squared supports at most 65536 codes");
        (self.code_l2_squared)(a, b)
    }

    /// Squared-L2 distances from `query` to each listed row of `set` (the
    /// blocked gather-distance kernel; see
    /// [`crate::distance::batch_l2_squared`]).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows.len()`, if `query.len() != set.dim()`,
    /// or if any row index is out of range.
    pub fn batch_l2_squared(&self, set: &VectorSet, rows: &[u32], query: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), rows.len(), "output length must match row count");
        assert_eq!(query.len(), set.dim(), "query dimension must match the set");
        let blocks = rows.len() / 4;
        for blk in 0..blocks {
            let b = blk * 4;
            let r = [
                set.row(rows[b] as usize),
                set.row(rows[b + 1] as usize),
                set.row(rows[b + 2] as usize),
                set.row(rows[b + 3] as usize),
            ];
            let d = (self.l2_squared_x4)(r, query);
            out[b..b + 4].copy_from_slice(&d);
        }
        for i in blocks * 4..rows.len() {
            out[i] = (self.l2_squared)(set.row(rows[i] as usize), query);
        }
    }

    /// Multi-query variant of [`Kernels::batch_l2_squared`]; see
    /// [`crate::distance::batch_l2_squared_mq`] for the layout contract.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows.len() * queries.len()`, if the
    /// dimensions disagree, or if any row index is out of range.
    pub fn batch_l2_squared_mq(
        &self,
        set: &VectorSet,
        rows: &[u32],
        queries: &VectorSet,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), rows.len() * queries.len(), "output length must be rows x queries");
        assert_eq!(queries.dim(), set.dim(), "query dimension must match the set");
        let blocks = rows.len() / 4;
        for blk in 0..blocks {
            let b = blk * 4;
            let r = [
                set.row(rows[b] as usize),
                set.row(rows[b + 1] as usize),
                set.row(rows[b + 2] as usize),
                set.row(rows[b + 3] as usize),
            ];
            for (q, query) in queries.iter().enumerate() {
                let d = (self.l2_squared_x4)(r, query);
                let o = q * rows.len() + b;
                out[o..o + 4].copy_from_slice(&d);
            }
        }
        for i in blocks * 4..rows.len() {
            let row = set.row(rows[i] as usize);
            for (q, query) in queries.iter().enumerate() {
                out[q * rows.len() + i] = (self.l2_squared)(row, query);
            }
        }
    }

    /// Squared-L2 distances from `query` to the consecutive rows
    /// `first_row..first_row + out.len()` of `set`.
    ///
    /// The dense sibling of [`Kernels::batch_l2_squared`]: brute-force scans
    /// (ground truth, exact k-NN oracles, inter-shard tables) walk every row
    /// and need no gather list. Results are bitwise identical to per-row
    /// [`Kernels::l2_squared`] calls.
    ///
    /// # Panics
    ///
    /// Panics if the row range exceeds `set.len()` or
    /// `query.len() != set.dim()`.
    pub fn l2_squared_rows(
        &self,
        set: &VectorSet,
        first_row: usize,
        query: &[f32],
        out: &mut [f32],
    ) {
        assert!(first_row + out.len() <= set.len(), "row range out of bounds");
        assert_eq!(query.len(), set.dim(), "query dimension must match the set");
        let blocks = out.len() / 4;
        for blk in 0..blocks {
            let b = first_row + blk * 4;
            let r = [set.row(b), set.row(b + 1), set.row(b + 2), set.row(b + 3)];
            let d = (self.l2_squared_x4)(r, query);
            out[blk * 4..blk * 4 + 4].copy_from_slice(&d);
        }
        for (i, o) in out.iter_mut().enumerate().skip(blocks * 4) {
            *o = (self.l2_squared)(set.row(first_row + i), query);
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch state
// ---------------------------------------------------------------------------

static ACTIVE: AtomicPtr<Kernels> = AtomicPtr::new(std::ptr::null_mut());

/// Returns the dispatched kernel table (detecting once on first use).
#[inline]
pub fn active_kernels() -> &'static Kernels {
    // Relaxed is sufficient: the pointer is either null or one of the
    // immutable `'static` tables above, fully initialized at compile time,
    // so no reader can observe a partially-built pointee and no
    // happens-before edge is needed (pwlint A001/A002).
    let p = ACTIVE.load(Ordering::Relaxed);
    if p.is_null() {
        init_active()
    } else {
        // SAFETY: the pointer only ever holds one of the `'static` tables.
        unsafe { &*p }
    }
}

/// The level of the dispatched kernel table.
pub fn active_simd_level() -> SimdLevel {
    active_kernels().level
}

#[cold]
fn init_active() -> &'static Kernels {
    let level = match std::env::var("PATHWEAVER_SIMD") {
        Ok(raw) => match SimdLevel::parse(raw.trim()) {
            Some(l) if l.is_supported() => l,
            Some(l) => {
                eprintln!(
                    "pathweaver: PATHWEAVER_SIMD={} is not supported on this CPU; \
                     falling back to scalar",
                    l.name()
                );
                SimdLevel::Scalar
            }
            None => {
                // A typo must not take the process down (or silently slow it
                // to scalar): warn once and use normal detection. Every level
                // is bitwise identical, so only wall-clock could differ.
                eprintln!(
                    "pathweaver: ignoring unknown PATHWEAVER_SIMD={raw:?} \
                     (expected scalar|sse2|avx2|neon); auto-detecting"
                );
                SimdLevel::detect()
            }
        },
        Err(_) => SimdLevel::detect(),
    };
    let k = kernels_for(level).expect("supported level always has a kernel table");
    // Relaxed publish is sound: the pointee is an immutable `'static` table
    // initialized at compile time, so there is nothing for a release fence
    // to order. Racing initializers store the same deterministic choice.
    ACTIVE.store(std::ptr::from_ref(k).cast_mut(), Ordering::Relaxed);
    k
}

/// Forces the dispatched level (test/bench hook).
///
/// Returns `false` (leaving the dispatch unchanged) when this host cannot
/// execute `level`. Swapping levels mid-run is harmless for correctness —
/// every level is bitwise identical — so benchmarks use this to A/B the same
/// code path.
pub fn set_simd_level(level: SimdLevel) -> bool {
    match kernels_for(level) {
        Some(k) => {
            // Relaxed: same immutable-'static-pointee argument as the
            // initial publish in `init_active`.
            ACTIVE.store(std::ptr::from_ref(k).cast_mut(), Ordering::Relaxed);
            true
        }
        None => false,
    }
}

/// Returns the kernel table for `level`, or `None` when this host cannot
/// execute it.
pub fn kernels_for(level: SimdLevel) -> Option<&'static Kernels> {
    if !level.is_supported() {
        return None;
    }
    match level {
        SimdLevel::Scalar => Some(&SCALAR_KERNELS),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => Some(&SSE2_KERNELS),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => Some(&AVX2_KERNELS),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => Some(&NEON_KERNELS),
        #[allow(unreachable_patterns)]
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (the universal fallback and the identity oracle)
// ---------------------------------------------------------------------------

static SCALAR_KERNELS: Kernels = Kernels {
    level: SimdLevel::Scalar,
    l2_squared: scalar::l2_squared,
    dot: scalar::dot,
    l2_squared_x4: scalar::l2_squared_x4,
    sign_code: scalar::sign_code,
    code_l2_squared: scalar::code_l2_squared,
};

pub(crate) mod scalar {
    //! The hand-unrolled scalar kernels: four independent accumulators so the
    //! compiler keeps them in registers (mirroring one warp-strided CUDA
    //! accumulation per lane). Every SIMD path reproduces this operation
    //! sequence exactly.

    pub(crate) fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let chunks = a.len() / 4;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for i in 0..chunks {
            let o = i * 4;
            let d0 = a[o] - b[o];
            let d1 = a[o + 1] - b[o + 1];
            let d2 = a[o + 2] - b[o + 2];
            let d3 = a[o + 3] - b[o + 3];
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
        }
        let mut tail = 0.0f32;
        for i in chunks * 4..a.len() {
            let d = a[i] - b[i];
            tail += d * d;
        }
        s0 + s1 + s2 + s3 + tail
    }

    pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let chunks = a.len() / 4;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for i in 0..chunks {
            let o = i * 4;
            s0 += a[o] * b[o];
            s1 += a[o + 1] * b[o + 1];
            s2 += a[o + 2] * b[o + 2];
            s3 += a[o + 3] * b[o + 3];
        }
        let mut tail = 0.0f32;
        for i in chunks * 4..a.len() {
            tail += a[i] * b[i];
        }
        s0 + s1 + s2 + s3 + tail
    }

    /// Four simultaneous squared-L2 distances with the identical accumulator
    /// structure (and therefore FP operation order) as [`l2_squared`].
    pub(crate) fn l2_squared_x4(r: [&[f32]; 4], query: &[f32]) -> [f32; 4] {
        let dim = query.len();
        let chunks = dim / 4;
        // acc[k] holds row k's four partial sums (s0..s3 of `l2_squared`).
        let mut acc = [[0.0f32; 4]; 4];
        for i in 0..chunks {
            let o = i * 4;
            for (k, acc_k) in acc.iter_mut().enumerate() {
                let row = r[k];
                let d0 = row[o] - query[o];
                let d1 = row[o + 1] - query[o + 1];
                let d2 = row[o + 2] - query[o + 2];
                let d3 = row[o + 3] - query[o + 3];
                acc_k[0] += d0 * d0;
                acc_k[1] += d1 * d1;
                acc_k[2] += d2 * d2;
                acc_k[3] += d3 * d3;
            }
        }
        let mut out = [0.0f32; 4];
        for (k, out_k) in out.iter_mut().enumerate() {
            let mut tail = 0.0f32;
            for i in chunks * 4..dim {
                let d = r[k][i] - query[i];
                tail += d * d;
            }
            *out_k = acc[k][0] + acc[k][1] + acc[k][2] + acc[k][3] + tail;
        }
        out
    }

    /// Integer code-space squared distance, 4-accumulator structure to match
    /// the float kernels' shape. Every SIMD path computes the same exact
    /// integer sum (integer addition is associative, unlike FP).
    pub(crate) fn code_l2_squared(a: &[i8], b: &[i8]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let chunks = a.len() / 4;
        let (mut s0, mut s1, mut s2, mut s3) = (0u32, 0u32, 0u32, 0u32);
        for i in 0..chunks {
            let o = i * 4;
            let d0 = i32::from(a[o]) - i32::from(b[o]);
            let d1 = i32::from(a[o + 1]) - i32::from(b[o + 1]);
            let d2 = i32::from(a[o + 2]) - i32::from(b[o + 2]);
            let d3 = i32::from(a[o + 3]) - i32::from(b[o + 3]);
            // A squared difference is non-negative, so the u32 casts lose
            // nothing; the dispatch wrapper bounds the length so the u32
            // accumulators cannot wrap.
            s0 += (d0 * d0) as u32;
            s1 += (d1 * d1) as u32;
            s2 += (d2 * d2) as u32;
            s3 += (d3 * d3) as u32;
        }
        let mut tail = 0u32;
        for i in chunks * 4..a.len() {
            let d = i32::from(a[i]) - i32::from(b[i]);
            tail += (d * d) as u32;
        }
        s0 + s1 + s2 + s3 + tail
    }

    /// Packed sign bits of `to - from`: bit `d` set iff `to[d] > from[d]`.
    pub(crate) fn sign_code(from: &[f32], to: &[f32], out: &mut [u32]) {
        let words = crate::signbit::sign_code_words(from.len());
        out[..words].fill(0);
        for (d, (f, t)) in from.iter().zip(to).enumerate() {
            if t > f {
                out[d / 32] |= 1u32 << (d % 32);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// x86_64: SSE2 and AVX2
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
static SSE2_KERNELS: Kernels = Kernels {
    level: SimdLevel::Sse2,
    l2_squared: x86::l2_squared_sse2_entry,
    dot: x86::dot_sse2_entry,
    l2_squared_x4: x86::l2_squared_x4_sse2_entry,
    sign_code: x86::sign_code_sse2_entry,
    code_l2_squared: x86::code_l2_squared_sse2_entry,
};

#[cfg(target_arch = "x86_64")]
static AVX2_KERNELS: Kernels = Kernels {
    level: SimdLevel::Avx2,
    l2_squared: x86::l2_squared_avx2_entry,
    dot: x86::dot_avx2_entry,
    l2_squared_x4: x86::l2_squared_x4_avx2_entry,
    sign_code: x86::sign_code_avx2_entry,
    code_l2_squared: x86::code_l2_squared_avx2_entry,
};

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! x86_64 kernels. Per the module invariant: separate `sub`/`mul`/`add`
    //! (never FMA), one lane per scalar accumulator, scalar-order reduction.

    use std::arch::x86_64::*;

    // --- safe entry points (installed in the dispatch tables) ---
    //
    // The kernels are safe `#[target_feature]` fns; only the call across the
    // feature boundary is unsafe (the entries must remain plain `fn`s so the
    // dispatch tables can hold them as function pointers), and each call
    // site carries the feature-availability argument.

    pub(super) fn l2_squared_sse2_entry(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: SSE2 is part of the x86_64 baseline ABI — every CPU this
        // module compiles for executes it.
        unsafe { l2_squared_sse2(a, b) }
    }
    pub(super) fn dot_sse2_entry(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: SSE2 is part of the x86_64 baseline ABI.
        unsafe { dot_sse2(a, b) }
    }
    pub(super) fn l2_squared_x4_sse2_entry(r: [&[f32]; 4], q: &[f32]) -> [f32; 4] {
        // SAFETY: SSE2 is part of the x86_64 baseline ABI.
        unsafe { l2_squared_x4_sse2(r, q) }
    }
    pub(super) fn sign_code_sse2_entry(f: &[f32], t: &[f32], out: &mut [u32]) {
        // SAFETY: SSE2 is part of the x86_64 baseline ABI.
        unsafe { sign_code_sse2(f, t, out) }
    }
    pub(super) fn l2_squared_avx2_entry(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: the AVX2 table is only installed by `kernels_for` after
        // `is_x86_feature_detected!("avx2") && ("fma")` reported support, so
        // the required features are present whenever this entry is reachable.
        unsafe { l2_squared_avx2(a, b) }
    }
    pub(super) fn dot_avx2_entry(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: reachable only through the AVX2 table, which `kernels_for`
        // installs exclusively after runtime detection of avx2+fma.
        unsafe { dot_avx2(a, b) }
    }
    pub(super) fn l2_squared_x4_avx2_entry(r: [&[f32]; 4], q: &[f32]) -> [f32; 4] {
        // SAFETY: reachable only through the AVX2 table, which `kernels_for`
        // installs exclusively after runtime detection of avx2+fma.
        unsafe { l2_squared_x4_avx2(r, q) }
    }
    pub(super) fn sign_code_avx2_entry(f: &[f32], t: &[f32], out: &mut [u32]) {
        // SAFETY: reachable only through the AVX2 table, which `kernels_for`
        // installs exclusively after runtime detection of avx2+fma.
        unsafe { sign_code_avx2(f, t, out) }
    }
    pub(super) fn code_l2_squared_sse2_entry(a: &[i8], b: &[i8]) -> u32 {
        // SAFETY: SSE2 is part of the x86_64 baseline ABI.
        unsafe { code_l2_squared_sse2(a, b) }
    }
    pub(super) fn code_l2_squared_avx2_entry(a: &[i8], b: &[i8]) -> u32 {
        // SAFETY: reachable only through the AVX2 table, which `kernels_for`
        // installs exclusively after runtime detection of avx2+fma.
        unsafe { code_l2_squared_avx2(a, b) }
    }

    /// Sums the four lanes of `v` plus `tail` in scalar program order:
    /// `((s0 + s1) + s2) + s3 + tail`.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn reduce4(v: __m128, tail: f32) -> f32 {
        let mut lanes = [0.0f32; 4];
        // SAFETY: `lanes` is a live local `[f32; 4]`, exactly the 16 bytes
        // the unaligned store writes.
        unsafe { _mm_storeu_ps(lanes.as_mut_ptr(), v) };
        lanes[0] + lanes[1] + lanes[2] + lanes[3] + tail
    }

    #[target_feature(enable = "sse2")]
    fn l2_squared_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let chunks = n / 4;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm_setzero_ps();
        for i in 0..chunks {
            // SAFETY: `i < chunks = n / 4`, so offsets `i * 4 .. i * 4 + 4`
            // lie inside `a`; the dispatch wrapper (`Kernels::l2_squared`)
            // asserts `b.len() == a.len()`, so the load from `bp` is
            // likewise in-bounds.
            let (va, vb) = unsafe { (_mm_loadu_ps(ap.add(i * 4)), _mm_loadu_ps(bp.add(i * 4))) };
            let d = _mm_sub_ps(va, vb);
            acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
        }
        let mut tail = 0.0f32;
        for i in chunks * 4..n {
            let d = a[i] - b[i];
            tail += d * d;
        }
        reduce4(acc, tail)
    }

    #[target_feature(enable = "sse2")]
    fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let chunks = n / 4;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm_setzero_ps();
        for i in 0..chunks {
            // SAFETY: `i < chunks = n / 4` keeps the 4-wide loads inside
            // `a`, and `Kernels::dot` asserts `b.len() == a.len()`.
            let (va, vb) = unsafe { (_mm_loadu_ps(ap.add(i * 4)), _mm_loadu_ps(bp.add(i * 4))) };
            acc = _mm_add_ps(acc, _mm_mul_ps(va, vb));
        }
        let mut tail = 0.0f32;
        for i in chunks * 4..n {
            tail += a[i] * b[i];
        }
        reduce4(acc, tail)
    }

    #[target_feature(enable = "sse2")]
    fn l2_squared_x4_sse2(r: [&[f32]; 4], query: &[f32]) -> [f32; 4] {
        let dim = query.len();
        debug_assert!(r.iter().all(|row| row.len() == dim));
        let chunks = dim / 4;
        let qp = query.as_ptr();
        let rp = [r[0].as_ptr(), r[1].as_ptr(), r[2].as_ptr(), r[3].as_ptr()];
        let mut acc = [_mm_setzero_ps(); 4];
        for i in 0..chunks {
            let o = i * 4;
            // SAFETY: `o + 4 <= chunks * 4 <= dim = query.len()`.
            let qv = unsafe { _mm_loadu_ps(qp.add(o)) };
            for (k, acc_k) in acc.iter_mut().enumerate() {
                // SAFETY: `Kernels::l2_squared_x4` asserts every row has
                // length `dim`, so `o + 4 <= dim` bounds this load too.
                let rv = unsafe { _mm_loadu_ps(rp[k].add(o)) };
                let d = _mm_sub_ps(rv, qv);
                *acc_k = _mm_add_ps(*acc_k, _mm_mul_ps(d, d));
            }
        }
        let mut out = [0.0f32; 4];
        for (k, out_k) in out.iter_mut().enumerate() {
            let mut tail = 0.0f32;
            for i in chunks * 4..dim {
                let d = r[k][i] - query[i];
                tail += d * d;
            }
            *out_k = reduce4(acc[k], tail);
        }
        out
    }

    #[target_feature(enable = "sse2")]
    fn sign_code_sse2(from: &[f32], to: &[f32], out: &mut [u32]) {
        let dim = from.len();
        debug_assert_eq!(dim, to.len());
        let words = crate::signbit::sign_code_words(dim);
        out[..words].fill(0);
        let chunks = dim / 4;
        let (fp, tp) = (from.as_ptr(), to.as_ptr());
        for i in 0..chunks {
            // SAFETY: `i < chunks = dim / 4` keeps both 4-wide loads inside
            // `from`; `Kernels::sign_code` asserts `to.len() == from.len()`.
            let (f, t) = unsafe { (_mm_loadu_ps(fp.add(i * 4)), _mm_loadu_ps(tp.add(i * 4))) };
            // `to > from` == `from < to`; false on NaN, like the scalar `>`.
            let bits = _mm_movemask_ps(_mm_cmplt_ps(f, t)) as u32;
            let d = i * 4;
            out[d / 32] |= bits << (d % 32);
        }
        for d in chunks * 4..dim {
            if to[d] > from[d] {
                out[d / 32] |= 1u32 << (d % 32);
            }
        }
    }

    /// Sums the four `i32` lanes of `v` plus `tail` in the u32 domain (the
    /// lanes are non-negative partial sums of squares; the dispatch wrapper
    /// bounds the input length so the total fits u32).
    #[inline]
    #[target_feature(enable = "sse2")]
    fn reduce4_i32(v: __m128i, tail: u32) -> u32 {
        let mut lanes = [0i32; 4];
        // SAFETY: `lanes` is a live local `[i32; 4]`, exactly the 16 bytes
        // the unaligned store writes.
        unsafe { _mm_storeu_si128(lanes.as_mut_ptr().cast::<__m128i>(), v) };
        lanes[0] as u32 + lanes[1] as u32 + lanes[2] as u32 + lanes[3] as u32 + tail
    }

    /// Integer code-space squared distance: 16 codes per iteration, each
    /// half sign-extended to `i16`, squared-and-paired with `pmaddwd` into
    /// `i32` lanes. Integer accumulation is exact, so the result equals the
    /// scalar kernel's regardless of lane structure.
    #[target_feature(enable = "sse2")]
    fn code_l2_squared_sse2(a: &[i8], b: &[i8]) -> u32 {
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let chunks = n / 16;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let zero = _mm_setzero_si128();
        let mut acc = _mm_setzero_si128();
        for i in 0..chunks {
            // SAFETY: `i < chunks = n / 16` keeps the 16-byte loads inside
            // `a`; `Kernels::code_l2_squared` asserts `b.len() == a.len()`.
            let (va, vb) = unsafe {
                (
                    _mm_loadu_si128(ap.add(i * 16).cast::<__m128i>()),
                    _mm_loadu_si128(bp.add(i * 16).cast::<__m128i>()),
                )
            };
            // Sign-extend each half to i16 by unpacking with the sign mask.
            let (sa, sb) = (_mm_cmpgt_epi8(zero, va), _mm_cmpgt_epi8(zero, vb));
            let dlo = _mm_sub_epi16(_mm_unpacklo_epi8(va, sa), _mm_unpacklo_epi8(vb, sb));
            let dhi = _mm_sub_epi16(_mm_unpackhi_epi8(va, sa), _mm_unpackhi_epi8(vb, sb));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(dlo, dlo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(dhi, dhi));
        }
        let mut tail = 0u32;
        for i in chunks * 16..n {
            let d = i32::from(a[i]) - i32::from(b[i]);
            tail += (d * d) as u32;
        }
        reduce4_i32(acc, tail)
    }

    /// AVX2 variant: 32 codes per iteration, halves widened with
    /// `vpmovsxbw`, squared-and-paired with `vpmaddwd` into eight `i32`
    /// lanes.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn code_l2_squared_avx2(a: &[i8], b: &[i8]) -> u32 {
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let chunks = n / 32;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            // SAFETY: `i < chunks = n / 32` keeps the 32-byte loads inside
            // `a`; `Kernels::code_l2_squared` asserts `b.len() == a.len()`.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(ap.add(i * 32).cast::<__m256i>()),
                    _mm256_loadu_si256(bp.add(i * 32).cast::<__m256i>()),
                )
            };
            let alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
            let ahi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(va));
            let blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
            let bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(vb));
            let dlo = _mm256_sub_epi16(alo, blo);
            let dhi = _mm256_sub_epi16(ahi, bhi);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(dlo, dlo));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(dhi, dhi));
        }
        let folded = _mm_add_epi32(_mm256_castsi256_si128(acc), _mm256_extracti128_si256::<1>(acc));
        let mut tail = 0u32;
        for i in chunks * 32..n {
            let d = i32::from(a[i]) - i32::from(b[i]);
            tail += (d * d) as u32;
        }
        reduce4_i32(folded, tail)
    }

    // AVX2 processes two dimension chunks per iteration (one 256-bit lane
    // pair), folding the two 128-bit halves into the accumulator in chunk
    // order — the same sequence the scalar loop would execute.

    #[target_feature(enable = "avx2", enable = "fma")]
    fn l2_squared_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let chunks = n / 4;
        let pairs = chunks / 2;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm_setzero_ps();
        for i in 0..pairs {
            // SAFETY: `i < pairs = (n / 4) / 2`, so offsets
            // `i * 8 .. i * 8 + 8` lie inside `a`.
            let va = unsafe { _mm256_loadu_ps(ap.add(i * 8)) };
            // SAFETY: `Kernels::l2_squared` asserts `b.len() == a.len()`,
            // so the same bound covers `b`.
            let vb = unsafe { _mm256_loadu_ps(bp.add(i * 8)) };
            let d = _mm256_sub_ps(va, vb);
            let m = _mm256_mul_ps(d, d);
            acc = _mm_add_ps(acc, _mm256_castps256_ps128(m));
            acc = _mm_add_ps(acc, _mm256_extractf128_ps::<1>(m));
        }
        if chunks % 2 == 1 {
            let o = pairs * 8;
            // SAFETY: the odd chunk spans `o .. o + 4 = chunks * 4 <= n`.
            let (va, vb) = unsafe { (_mm_loadu_ps(ap.add(o)), _mm_loadu_ps(bp.add(o))) };
            let d = _mm_sub_ps(va, vb);
            acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
        }
        let mut tail = 0.0f32;
        for i in chunks * 4..n {
            let d = a[i] - b[i];
            tail += d * d;
        }
        reduce4(acc, tail)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let chunks = n / 4;
        let pairs = chunks / 2;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm_setzero_ps();
        for i in 0..pairs {
            // SAFETY: `i < pairs = (n / 4) / 2` keeps the 8-wide load
            // inside `a`.
            let va = unsafe { _mm256_loadu_ps(ap.add(i * 8)) };
            // SAFETY: `Kernels::dot` asserts `b.len() == a.len()`, so the
            // same bound covers `b`.
            let vb = unsafe { _mm256_loadu_ps(bp.add(i * 8)) };
            let m = _mm256_mul_ps(va, vb);
            acc = _mm_add_ps(acc, _mm256_castps256_ps128(m));
            acc = _mm_add_ps(acc, _mm256_extractf128_ps::<1>(m));
        }
        if chunks % 2 == 1 {
            let o = pairs * 8;
            // SAFETY: the odd chunk spans `o .. o + 4 = chunks * 4 <= n`.
            let (va, vb) = unsafe { (_mm_loadu_ps(ap.add(o)), _mm_loadu_ps(bp.add(o))) };
            acc = _mm_add_ps(acc, _mm_mul_ps(va, vb));
        }
        let mut tail = 0.0f32;
        for i in chunks * 4..n {
            tail += a[i] * b[i];
        }
        reduce4(acc, tail)
    }

    /// Blocked kernel: rows (0,1) and (2,3) share one 256-bit accumulator
    /// each (two interleaved `f32x4` lane groups); the query chunk is
    /// broadcast to both halves. Lanes never cross rows, so each row's
    /// accumulation is the exact scalar sequence.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn l2_squared_x4_avx2(r: [&[f32]; 4], query: &[f32]) -> [f32; 4] {
        let dim = query.len();
        debug_assert!(r.iter().all(|row| row.len() == dim));
        let chunks = dim / 4;
        let qp = query.as_ptr();
        let rp = [r[0].as_ptr(), r[1].as_ptr(), r[2].as_ptr(), r[3].as_ptr()];
        let mut acc01 = _mm256_setzero_ps();
        let mut acc23 = _mm256_setzero_ps();
        for i in 0..chunks {
            let o = i * 4;
            // SAFETY: `o + 4 <= chunks * 4 <= dim`, and
            // `Kernels::l2_squared_x4` asserts every row has length `dim`,
            // so each of the five 4-wide loads stays in-bounds.
            let (qv, v01, v23) = unsafe {
                (
                    _mm_loadu_ps(qp.add(o)),
                    _mm256_set_m128(_mm_loadu_ps(rp[1].add(o)), _mm_loadu_ps(rp[0].add(o))),
                    _mm256_set_m128(_mm_loadu_ps(rp[3].add(o)), _mm_loadu_ps(rp[2].add(o))),
                )
            };
            let q2 = _mm256_set_m128(qv, qv);
            let d01 = _mm256_sub_ps(v01, q2);
            let d23 = _mm256_sub_ps(v23, q2);
            acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(d01, d01));
            acc23 = _mm256_add_ps(acc23, _mm256_mul_ps(d23, d23));
        }
        let accs = [
            _mm256_castps256_ps128(acc01),
            _mm256_extractf128_ps::<1>(acc01),
            _mm256_castps256_ps128(acc23),
            _mm256_extractf128_ps::<1>(acc23),
        ];
        let mut out = [0.0f32; 4];
        for (k, out_k) in out.iter_mut().enumerate() {
            let mut tail = 0.0f32;
            for i in chunks * 4..dim {
                let d = r[k][i] - query[i];
                tail += d * d;
            }
            *out_k = reduce4(accs[k], tail);
        }
        out
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    fn sign_code_avx2(from: &[f32], to: &[f32], out: &mut [u32]) {
        let dim = from.len();
        debug_assert_eq!(dim, to.len());
        let words = crate::signbit::sign_code_words(dim);
        out[..words].fill(0);
        let groups = dim / 8;
        let (fp, tp) = (from.as_ptr(), to.as_ptr());
        for i in 0..groups {
            // SAFETY: `i < groups = dim / 8` keeps this 8-wide load inside `from`.
            let f = unsafe { _mm256_loadu_ps(fp.add(i * 8)) };
            // SAFETY: `Kernels::sign_code` asserts `to.len() == from.len()`,
            // so the same bound keeps the load inside `to`.
            let t = unsafe { _mm256_loadu_ps(tp.add(i * 8)) };
            // Ordered `from < to`, quiet on NaN — matches the scalar `>`.
            let bits = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LT_OQ>(f, t)) as u32;
            let d = i * 8;
            out[d / 32] |= bits << (d % 32);
        }
        for d in groups * 8..dim {
            if to[d] > from[d] {
                out[d / 32] |= 1u32 << (d % 32);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// aarch64: NEON
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
static NEON_KERNELS: Kernels = Kernels {
    level: SimdLevel::Neon,
    l2_squared: neon::l2_squared_neon_entry,
    dot: neon::dot_neon_entry,
    l2_squared_x4: neon::l2_squared_x4_neon_entry,
    sign_code: neon::sign_code_neon_entry,
    code_l2_squared: neon::code_l2_squared_neon_entry,
};

#[cfg(target_arch = "aarch64")]
mod neon {
    //! aarch64 NEON kernels: one `float32x4` lane per scalar accumulator,
    //! separate multiply/add (no `vfma`), scalar-order reduction.

    use std::arch::aarch64::*;

    // The kernels are safe `#[target_feature]` fns; only the call across the
    // feature boundary is unsafe (the entries must remain plain `fn`s so the
    // dispatch table can hold them as function pointers).

    pub(super) fn l2_squared_neon_entry(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: NEON is part of the aarch64 baseline ABI — every CPU this
        // module compiles for executes it.
        unsafe { l2_squared_neon(a, b) }
    }
    pub(super) fn dot_neon_entry(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: NEON is part of the aarch64 baseline ABI.
        unsafe { dot_neon(a, b) }
    }
    pub(super) fn l2_squared_x4_neon_entry(r: [&[f32]; 4], q: &[f32]) -> [f32; 4] {
        // SAFETY: NEON is part of the aarch64 baseline ABI.
        unsafe { l2_squared_x4_neon(r, q) }
    }
    pub(super) fn sign_code_neon_entry(f: &[f32], t: &[f32], out: &mut [u32]) {
        // SAFETY: NEON is part of the aarch64 baseline ABI.
        unsafe { sign_code_neon(f, t, out) }
    }
    pub(super) fn code_l2_squared_neon_entry(a: &[i8], b: &[i8]) -> u32 {
        // SAFETY: NEON is part of the aarch64 baseline ABI.
        unsafe { code_l2_squared_neon(a, b) }
    }

    /// Sums the four lanes of `v` plus `tail` in scalar program order.
    #[inline]
    #[target_feature(enable = "neon")]
    fn reduce4(v: float32x4_t, tail: f32) -> f32 {
        let mut lanes = [0.0f32; 4];
        // SAFETY: `lanes` is a live local `[f32; 4]`, exactly the 16 bytes
        // the store writes.
        unsafe { vst1q_f32(lanes.as_mut_ptr(), v) };
        lanes[0] + lanes[1] + lanes[2] + lanes[3] + tail
    }

    #[target_feature(enable = "neon")]
    fn l2_squared_neon(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let chunks = n / 4;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = vdupq_n_f32(0.0);
        for i in 0..chunks {
            // SAFETY: `i < chunks = n / 4` keeps offsets `i * 4 .. i * 4 + 4`
            // inside `a`; `Kernels::l2_squared` asserts `b.len() == a.len()`.
            let (va, vb) = unsafe { (vld1q_f32(ap.add(i * 4)), vld1q_f32(bp.add(i * 4))) };
            let d = vsubq_f32(va, vb);
            acc = vaddq_f32(acc, vmulq_f32(d, d));
        }
        let mut tail = 0.0f32;
        for i in chunks * 4..n {
            let d = a[i] - b[i];
            tail += d * d;
        }
        reduce4(acc, tail)
    }

    #[target_feature(enable = "neon")]
    fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let chunks = n / 4;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = vdupq_n_f32(0.0);
        for i in 0..chunks {
            // SAFETY: `i < chunks = n / 4` keeps the 4-wide loads inside
            // `a`; `Kernels::dot` asserts `b.len() == a.len()`.
            let (va, vb) = unsafe { (vld1q_f32(ap.add(i * 4)), vld1q_f32(bp.add(i * 4))) };
            acc = vaddq_f32(acc, vmulq_f32(va, vb));
        }
        let mut tail = 0.0f32;
        for i in chunks * 4..n {
            tail += a[i] * b[i];
        }
        reduce4(acc, tail)
    }

    #[target_feature(enable = "neon")]
    fn l2_squared_x4_neon(r: [&[f32]; 4], query: &[f32]) -> [f32; 4] {
        let dim = query.len();
        debug_assert!(r.iter().all(|row| row.len() == dim));
        let chunks = dim / 4;
        let qp = query.as_ptr();
        let rp = [r[0].as_ptr(), r[1].as_ptr(), r[2].as_ptr(), r[3].as_ptr()];
        let mut acc = [vdupq_n_f32(0.0); 4];
        for i in 0..chunks {
            let o = i * 4;
            // SAFETY: `o + 4 <= chunks * 4 <= dim = query.len()`.
            let qv = unsafe { vld1q_f32(qp.add(o)) };
            for (k, acc_k) in acc.iter_mut().enumerate() {
                // SAFETY: `Kernels::l2_squared_x4` asserts every row has
                // length `dim`, so `o + 4 <= dim` bounds this load too.
                let rv = unsafe { vld1q_f32(rp[k].add(o)) };
                let d = vsubq_f32(rv, qv);
                *acc_k = vaddq_f32(*acc_k, vmulq_f32(d, d));
            }
        }
        let mut out = [0.0f32; 4];
        for (k, out_k) in out.iter_mut().enumerate() {
            let mut tail = 0.0f32;
            for i in chunks * 4..dim {
                let d = r[k][i] - query[i];
                tail += d * d;
            }
            *out_k = reduce4(acc[k], tail);
        }
        out
    }

    /// Integer code-space squared distance: 16 codes per iteration, widened
    /// differences (`vsubl`) squared-and-accumulated (`vmlal`) into `i32`
    /// lanes. Integer accumulation is exact, so the result equals the scalar
    /// kernel's regardless of lane structure.
    #[target_feature(enable = "neon")]
    fn code_l2_squared_neon(a: &[i8], b: &[i8]) -> u32 {
        let n = a.len();
        debug_assert_eq!(n, b.len());
        let chunks = n / 16;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = vdupq_n_s32(0);
        for i in 0..chunks {
            // SAFETY: `i < chunks = n / 16` keeps the 16-byte loads inside
            // `a`; `Kernels::code_l2_squared` asserts `b.len() == a.len()`.
            let (va, vb) = unsafe { (vld1q_s8(ap.add(i * 16)), vld1q_s8(bp.add(i * 16))) };
            let dlo = vsubl_s8(vget_low_s8(va), vget_low_s8(vb));
            let dhi = vsubl_high_s8(va, vb);
            acc = vmlal_s16(acc, vget_low_s16(dlo), vget_low_s16(dlo));
            acc = vmlal_high_s16(acc, dlo, dlo);
            acc = vmlal_s16(acc, vget_low_s16(dhi), vget_low_s16(dhi));
            acc = vmlal_high_s16(acc, dhi, dhi);
        }
        let mut tail = 0u32;
        for i in chunks * 16..n {
            let d = i32::from(a[i]) - i32::from(b[i]);
            tail += (d * d) as u32;
        }
        // The lanes are non-negative partial sums; the dispatch wrapper
        // bounds the length so the u32 total cannot wrap.
        vaddvq_s32(acc) as u32 + tail
    }

    #[target_feature(enable = "neon")]
    fn sign_code_neon(from: &[f32], to: &[f32], out: &mut [u32]) {
        let dim = from.len();
        debug_assert_eq!(dim, to.len());
        let words = crate::signbit::sign_code_words(dim);
        out[..words].fill(0);
        let chunks = dim / 4;
        let (fp, tp) = (from.as_ptr(), to.as_ptr());
        let weights: [u32; 4] = [1, 2, 4, 8];
        // SAFETY: `weights` is a live local `[u32; 4]`, exactly the 16 bytes
        // the load reads.
        let wv = unsafe { vld1q_u32(weights.as_ptr()) };
        for i in 0..chunks {
            // SAFETY: `i < chunks = dim / 4` keeps both 4-wide loads inside
            // `from`; `Kernels::sign_code` asserts `to.len() == from.len()`.
            let (f, t) = unsafe { (vld1q_f32(fp.add(i * 4)), vld1q_f32(tp.add(i * 4))) };
            // Lanes where `to > from` become all-ones; mask to one bit per
            // lane and horizontal-add into a 4-bit group.
            let m = vcgtq_f32(t, f);
            let bits = vaddvq_u32(vandq_u32(m, wv));
            let d = i * 4;
            out[d / 32] |= bits << (d % 32);
        }
        for d in chunks * 4..dim {
            if to[d] > from[d] {
                out[d / 32] |= 1u32 << (d % 32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for l in SimdLevel::ALL {
            assert_eq!(SimdLevel::parse(l.name()), Some(l));
        }
        assert_eq!(SimdLevel::parse("AVX2"), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("avx512"), None);
    }

    #[test]
    fn scalar_always_available() {
        assert!(SimdLevel::Scalar.is_supported());
        assert!(kernels_for(SimdLevel::Scalar).is_some());
        assert!(SimdLevel::available().contains(&SimdLevel::Scalar));
    }

    #[test]
    fn detect_is_supported() {
        let l = SimdLevel::detect();
        assert!(l.is_supported());
        assert!(kernels_for(l).is_some());
    }

    #[test]
    fn active_kernels_resolve() {
        let k = active_kernels();
        assert!(k.level().is_supported());
        // Trivial smoke: zero distance to self through whatever path is live.
        let v: Vec<f32> = (0..33).map(|i| i as f32 * 0.5).collect();
        assert_eq!(k.l2_squared(&v, &v), 0.0);
    }

    #[test]
    fn set_level_rejects_unsupported() {
        #[cfg(target_arch = "x86_64")]
        assert!(!set_simd_level(SimdLevel::Neon));
        #[cfg(target_arch = "aarch64")]
        assert!(!set_simd_level(SimdLevel::Avx2));
    }

    #[test]
    fn every_available_level_matches_scalar_bitwise() {
        let a: Vec<f32> = (0..259).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let b: Vec<f32> = (0..259).map(|i| (i as f32 * 0.51).cos() * 2.0).collect();
        let scalar = kernels_for(SimdLevel::Scalar).unwrap();
        for level in SimdLevel::available() {
            let k = kernels_for(level).unwrap();
            for dim in [0usize, 1, 3, 4, 7, 8, 15, 16, 31, 64, 96, 100, 128, 259] {
                let (xa, xb) = (&a[..dim], &b[..dim]);
                assert_eq!(
                    k.l2_squared(xa, xb).to_bits(),
                    scalar.l2_squared(xa, xb).to_bits(),
                    "l2 {} dim {dim}",
                    level.name()
                );
                assert_eq!(
                    k.dot(xa, xb).to_bits(),
                    scalar.dot(xa, xb).to_bits(),
                    "dot {} dim {dim}",
                    level.name()
                );
            }
        }
    }

    #[test]
    fn code_distance_matches_scalar_on_every_level() {
        // Mixed-sign codes hitting both unpack halves and every tail length
        // around the 16/32-byte chunk boundaries.
        let a: Vec<i8> =
            (0i32..300).map(|i| i8::try_from((i * 37 + 11) % 255 - 127).unwrap()).collect();
        let b: Vec<i8> =
            (0i32..300).map(|i| i8::try_from((i * 91 + 5) % 255 - 127).unwrap()).collect();
        let scalar = kernels_for(SimdLevel::Scalar).unwrap();
        for level in SimdLevel::available() {
            let k = kernels_for(level).unwrap();
            for len in [0usize, 1, 4, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 128, 300] {
                assert_eq!(
                    k.code_l2_squared(&a[..len], &b[..len]),
                    scalar.code_l2_squared(&a[..len], &b[..len]),
                    "codes {} len {len}",
                    level.name()
                );
            }
        }
        // Worst-case magnitudes do not overflow the 32-bit accumulators.
        let lo = vec![-127i8; 1024];
        let hi = vec![127i8; 1024];
        assert_eq!(scalar.code_l2_squared(&lo, &hi), 1024 * 254 * 254);
        for level in SimdLevel::available() {
            let k = kernels_for(level).unwrap();
            assert_eq!(k.code_l2_squared(&lo, &hi), 1024 * 254 * 254);
        }
    }
}
