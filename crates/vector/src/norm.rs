//! Vector norms and normalization.

use crate::distance::dot;
use crate::matrix::VectorSet;

/// Euclidean norm of a vector.
#[inline]
pub fn norm(v: &[f32]) -> f32 {
    dot(v, v).sqrt()
}

/// Normalizes `v` to unit length in place; leaves zero vectors untouched.
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// Normalizes every row of a [`VectorSet`] to unit length.
///
/// Used when preparing cosine / inner-product workloads (e.g. the Wiki-style
/// text-embedding profile) where vectors conventionally live on the sphere.
pub fn normalize_all(set: &mut VectorSet) {
    for i in 0..set.len() {
        normalize(set.row_mut(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_axis() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn normalize_makes_unit() {
        let mut v = vec![3.0f32, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_is_noop() {
        let mut v = vec![0.0f32; 8];
        normalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn normalize_all_rows() {
        let mut set = VectorSet::from_fn(5, 6, |r, c| (r + c + 1) as f32);
        normalize_all(&mut set);
        for row in set.iter() {
            assert!((norm(row) - 1.0).abs() < 1e-5);
        }
    }
}
