//! Symmetric scalar `i8` quantization (extension feature).
//!
//! The paper's related work (§7.2) scales to larger datasets by compressing
//! vectors; this module provides the simplest such scheme — per-set symmetric
//! scalar quantization to `i8` — so the memory-accounting experiments can
//! model a 4× footprint reduction and the search kernel can optionally trade
//! accuracy for bandwidth.

use crate::matrix::VectorSet;
use serde::{Deserialize, Serialize};

/// A scalar-quantized vector set: each `f32` maps to `round(x / scale)` in
/// `i8`, with one global scale chosen from the set's max magnitude.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedSet {
    dim: usize,
    scale: f32,
    data: Vec<i8>,
}

impl QuantizedSet {
    /// Quantizes `set` with a scale that maps its largest magnitude to 127.
    ///
    /// An all-zero set quantizes with scale 1. Works on either storage mode
    /// (rows are iterated logically, so aligned padding never quantizes).
    // The clamp to ±127.0 bounds the rounded value to i8 range, so the
    // float-to-i8 cast cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    pub fn quantize(set: &VectorSet) -> Self {
        let max = set.iter().flatten().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
        let data =
            set.iter().flatten().map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8).collect();
        Self { dim: set.dim(), scale, data }
    }

    /// Returns the vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the number of vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Returns `true` when the set holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Returns quantized row `i`.
    pub fn row(&self, i: usize) -> &[i8] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Squared L2 distance between a quantized row and an `f32` query, in the
    /// original (dequantized) units.
    pub fn l2_squared_to(&self, i: usize, query: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), self.dim);
        let mut acc = 0.0f32;
        for (q, &c) in query.iter().zip(self.row(i)) {
            let d = q - f32::from(c) * self.scale;
            acc += d * d;
        }
        acc
    }

    /// Reconstructs the full-precision approximation of the set.
    pub fn dequantize(&self) -> VectorSet {
        let data = self.data.iter().map(|&c| f32::from(c) * self.scale).collect();
        VectorSet::from_flat(self.dim, data)
    }

    /// Memory footprint of the quantized payload in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2_squared;

    #[test]
    fn roundtrip_error_is_bounded() {
        let set = VectorSet::from_fn(20, 16, |r, c| ((r * 31 + c * 7) % 100) as f32 - 50.0);
        let q = QuantizedSet::quantize(&set);
        let back = q.dequantize();
        // Max error per element is scale/2.
        let bound = q.scale() * 0.5 + 1e-5;
        for (a, b) in set.as_flat().iter().zip(back.as_flat()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn quantized_distance_close_to_exact() {
        let set = VectorSet::from_fn(8, 32, |r, c| ((r + 1) * (c + 3)) as f32 % 17.0);
        let q = QuantizedSet::quantize(&set);
        let query: Vec<f32> = (0..32).map(|i| (i % 5) as f32).collect();
        for i in 0..set.len() {
            let exact = l2_squared(set.row(i), &query);
            let approx = q.l2_squared_to(i, &query);
            assert!((exact - approx).abs() <= 0.1 * exact.max(1.0));
        }
    }

    #[test]
    fn footprint_is_quarter() {
        let set = VectorSet::from_fn(10, 64, |_, _| 1.0);
        let q = QuantizedSet::quantize(&set);
        assert_eq!(q.nbytes() * 4, set.nbytes());
    }

    #[test]
    fn zero_set_quantizes() {
        let set = VectorSet::from_fn(3, 4, |_, _| 0.0);
        let q = QuantizedSet::quantize(&set);
        assert_eq!(q.scale(), 1.0);
        assert!(q.dequantize().as_flat().iter().all(|&x| x == 0.0));
    }
}
