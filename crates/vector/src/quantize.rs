//! Per-dimension scalar `i8` quantization — the traversal compression tier.
//!
//! The paper's profile (§2, Fig 2) shows beam search is memory-bound:
//! \>80–95 % of kernel time is streaming `f32` vectors for L2 distances, so
//! bytes ≈ time in the simulated cost model. This module quantizes each
//! dimension independently to `i8` (`code = round((x - offset_d) / scale_d)`,
//! one scale/offset pair per dimension), shrinking distance traffic ~4×. The
//! search kernel traverses on quantized distances and exact-L2 re-ranks only
//! the final candidate set, which is the standard escape hatch (CAGRA-Q,
//! PilotANN) for this regime.
//!
//! # Storage
//!
//! Rows are padded with zero codes to a multiple of 64 bytes and start on
//! 64-byte boundaries, mirroring [`VectorSet`]'s aligned mode: one row is one
//! coalesced load in the cost model and SIMD kernels never straddle a cache
//! line at a row start.
//!
//! # Distance semantics
//!
//! Traversal distances are **integer code-space distances**
//! `Σ (code_a[d] - code_b[d])²` computed by the runtime-dispatched kernels in
//! [`crate::simd`]. Integer accumulation is exact, so every dispatch level is
//! bitwise identical by construction. Code-space distance ignores per-dim
//! scale differences — it effectively range-normalizes each dimension — so
//! ordering can deviate from exact L2 when dimension ranges are very
//! heterogeneous; the exact re-rank of the final candidates repairs the
//! returned distances and ids.

use crate::matrix::VectorSet;

/// One 64-byte-aligned group of 64 `i8` code lanes — the allocation unit of
/// the quantized storage. `repr(C, align(64))` with a 64-byte payload means a
/// `Vec<QBlock>` is a gap-free `i8` buffer whose base (and every row start)
/// sits on a cache line.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy, PartialEq)]
struct QBlock([i8; 64]);

/// Codes per [`QBlock`].
const QBLOCK_LANES: usize = 64;

/// Physical row stride (in codes) for dimensionality `dim`: the dimension
/// rounded up to a whole number of blocks.
fn quantized_stride(dim: usize) -> usize {
    dim.div_ceil(QBLOCK_LANES) * QBLOCK_LANES
}

/// A per-dimension scalar-quantized vector set.
///
/// Dimension `d` of every row maps to
/// `round((x - offsets[d]) / scales[d])` clamped to `[-127, 127]`; the
/// offsets/scales are chosen from the per-dimension min/max of the training
/// set, so training rows never clamp and the reconstruction error per element
/// is at most `scales[d] / 2`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSet {
    dim: usize,
    /// Physical codes from one row start to the next (`dim` rounded up to a
    /// multiple of 64).
    stride: usize,
    /// Number of logical rows. Stored explicitly: deriving it as
    /// `data.len() / dim` divided by zero on dim-0 sets.
    len: usize,
    /// Per-dimension quantization step (always > 0).
    scales: Vec<f32>,
    /// Per-dimension range midpoint (code 0 dequantizes to the offset).
    offsets: Vec<f32>,
    data: Vec<QBlock>,
}

impl QuantizedSet {
    /// Quantizes `set` with per-dimension scale/offset chosen from the
    /// per-dimension value range (`offset = (min + max) / 2`,
    /// `scale = (max - min) / 254`, so the extremes map to ±127 exactly).
    ///
    /// Constant (and all-zero) dimensions get scale 1 and quantize to code 0
    /// with zero reconstruction error. Works on either storage mode: rows
    /// are iterated logically, so aligned `f32` padding never trains the
    /// quantizer.
    pub fn quantize(set: &VectorSet) -> Self {
        let dim = set.dim();
        let mut lo = vec![f32::INFINITY; dim];
        let mut hi = vec![f32::NEG_INFINITY; dim];
        for row in set.iter() {
            for (d, &x) in row.iter().enumerate() {
                lo[d] = lo[d].min(x);
                hi[d] = hi[d].max(x);
            }
        }
        let mut scales = Vec::with_capacity(dim);
        let mut offsets = Vec::with_capacity(dim);
        for d in 0..dim {
            let range = hi[d] - lo[d];
            if range > 0.0 {
                scales.push(range / 254.0);
                offsets.push((lo[d] + hi[d]) * 0.5);
            } else {
                // Empty set or constant dimension: code 0 == the offset.
                scales.push(1.0);
                offsets.push(if set.is_empty() { 0.0 } else { lo[d] });
            }
        }
        let mut q =
            Self { dim, stride: quantized_stride(dim), len: 0, scales, offsets, data: Vec::new() };
        for row in set.iter() {
            q.push(row);
        }
        q
    }

    /// Returns the vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the number of vectors.
    ///
    /// Degenerate dim-0 sets (possible through [`QuantizedSet::try_from_parts`])
    /// report 0 — the previous implementation derived the length as
    /// `data.len() / dim` and panicked with a divide-by-zero.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the set holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical codes from one row start to the next.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Per-dimension quantization steps.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Per-dimension range midpoints.
    pub fn offsets(&self) -> &[f32] {
        &self.offsets
    }

    /// The full physical code buffer, padding lanes included.
    #[inline]
    fn physical(&self) -> &[i8] {
        qblocks_as_codes(&self.data)
    }

    /// Returns quantized row `i` (exactly `dim` codes, never padding).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[i8] {
        assert!(i < self.len, "row index {i} out of range for {} rows", self.len);
        let start = i * self.stride;
        &self.physical()[start..start + self.dim]
    }

    /// Returns quantized row `i` including its zero padding (`stride` codes).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row_padded(&self, i: usize) -> &[i8] {
        assert!(i < self.len, "row index {i} out of range for {} rows", self.len);
        let start = i * self.stride;
        &self.physical()[start..start + self.stride]
    }

    /// Encodes one value of dimension `d` with the frozen scale/offset.
    // The clamp to ±127.0 bounds the rounded value to i8 range, so the
    // float-to-i8 cast cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    #[inline]
    fn encode_value(&self, d: usize, x: f32) -> i8 {
        ((x - self.offsets[d]) / self.scales[d]).round().clamp(-127.0, 127.0) as i8
    }

    /// Encodes a query (or any out-of-set vector) into padded codes, reusing
    /// `out` as scratch. Values outside the training range clamp to ±127.
    ///
    /// The result has `stride()` codes with zero padding, ready for
    /// [`QuantizedSet::batch_code_l2_squared`].
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<i8>) {
        assert_eq!(v.len(), self.dim, "encoded vector has wrong dimension");
        out.clear();
        out.resize(self.stride, 0);
        for (d, &x) in v.iter().enumerate() {
            out[d] = self.encode_value(d, x);
        }
    }

    /// Encodes a query into freshly allocated padded codes.
    pub fn encode(&self, v: &[f32]) -> Vec<i8> {
        let mut out = Vec::new();
        self.encode_into(v, &mut out);
        out
    }

    /// Appends one vector, quantized with the **frozen** scales/offsets
    /// (values outside the original training range clamp to ±127).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "pushed vector has wrong dimension");
        let start = self.len * self.stride;
        self.data.resize((start + self.stride) / QBLOCK_LANES, QBlock([0; QBLOCK_LANES]));
        let flat = qblocks_as_mut_codes(&mut self.data);
        for (d, &x) in v.iter().enumerate() {
            // Inline encode_value to avoid borrowing `self` while `flat`
            // borrows `self.data`.
            let code = ((x - self.offsets[d]) / self.scales[d]).round().clamp(-127.0, 127.0);
            // The clamp bounds the value to i8 range, so the cast cannot
            // truncate.
            #[allow(clippy::cast_possible_truncation)]
            {
                flat[start + d] = code as i8;
            }
        }
        self.len += 1;
    }

    /// Integer code-space squared distance between row `i` and padded query
    /// codes, through the dispatched SIMD kernels. Bitwise identical across
    /// every dispatch level (integer accumulation is exact).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` or `qcodes.len() != stride()`.
    #[inline]
    pub fn code_l2_squared(&self, i: usize, qcodes: &[i8]) -> u32 {
        crate::simd::active_kernels().code_l2_squared(self.row_padded(i), qcodes)
    }

    /// Code-space squared distances from padded query codes to each listed
    /// row, written into `out` as `f32` (the exact integer distance converted
    /// once — deterministic, so still identical across dispatch levels).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows.len()`, `qcodes.len() != stride()`, or
    /// any row index is out of range.
    pub fn batch_code_l2_squared(&self, rows: &[u32], qcodes: &[i8], out: &mut [f32]) {
        assert_eq!(out.len(), rows.len(), "output length must match row count");
        let k = crate::simd::active_kernels();
        for (o, &r) in out.iter_mut().zip(rows) {
            // Code distances are bounded by 254² · dim, far below 2^32 for
            // any real dimensionality; f64 would be waste, f32 rounding is
            // deterministic and order-preserving at traversal precision.
            #[allow(clippy::cast_precision_loss)]
            {
                *o = k.code_l2_squared(self.row_padded(r as usize), qcodes) as f32;
            }
        }
    }

    /// Reconstructs the full-precision approximation of the set
    /// (`x ≈ code · scale_d + offset_d`).
    pub fn dequantize(&self) -> VectorSet {
        let mut data = Vec::with_capacity(self.len * self.dim);
        for i in 0..self.len {
            for (d, &c) in self.row(i).iter().enumerate() {
                data.push(f32::from(c) * self.scales[d] + self.offsets[d]);
            }
        }
        VectorSet::from_flat(self.dim, data)
    }

    /// Memory footprint of the quantized payload in bytes (codes including
    /// padding, plus the per-dimension scales and offsets).
    pub fn nbytes(&self) -> usize {
        self.len * self.stride + 2 * self.dim * std::mem::size_of::<f32>()
    }

    /// The full physical code buffer — `len * stride` codes, padding
    /// included. This is the persistence view: the durable store writes it
    /// verbatim and reads it back with [`QuantizedSet::try_from_parts`].
    pub fn as_padded_codes(&self) -> &[i8] {
        &self.physical()[..self.len * self.stride]
    }

    /// Rebuilds a set from its persisted parts.
    ///
    /// A fully empty description (`dim == 0`, no rows, no parameters) is
    /// accepted and yields a degenerate empty set ([`QuantizedSet::len`]
    /// returns 0 rather than dividing by zero).
    ///
    /// # Errors
    ///
    /// A description of the violation when the shapes disagree
    /// (`scales`/`offsets` not `dim` long, codes not `len * stride(dim)`,
    /// or a non-positive / non-finite scale).
    pub fn try_from_parts(
        dim: usize,
        len: usize,
        scales: Vec<f32>,
        offsets: Vec<f32>,
        codes: &[i8],
    ) -> Result<Self, String> {
        if scales.len() != dim || offsets.len() != dim {
            return Err(format!(
                "quantized parameter length mismatch: {} scales / {} offsets for dim {dim}",
                scales.len(),
                offsets.len()
            ));
        }
        if dim == 0 && len != 0 {
            return Err("dim-0 quantized set cannot hold rows".into());
        }
        let stride = quantized_stride(dim);
        if codes.len() != len * stride {
            return Err(format!(
                "quantized code length mismatch for {len} rows of stride {stride}"
            ));
        }
        if scales.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err("quantized scale must be positive and finite".into());
        }
        if offsets.iter().any(|o| !o.is_finite()) {
            return Err("quantized offset must be finite".into());
        }
        let mut data = vec![QBlock([0; QBLOCK_LANES]); codes.len() / QBLOCK_LANES];
        qblocks_as_mut_codes(&mut data).copy_from_slice(codes);
        Ok(Self { dim, stride, len, scales, offsets, data })
    }
}

/// Views a block buffer as its flat code content.
#[inline]
fn qblocks_as_codes(blocks: &[QBlock]) -> &[i8] {
    // SAFETY: `QBlock` is `repr(C)` with a single `[i8; 64]` field and no
    // padding bytes (size 64 == align 64), so a block slice is exactly a
    // contiguous, initialized `i8` buffer of 64x the length.
    unsafe { std::slice::from_raw_parts(blocks.as_ptr().cast::<i8>(), blocks.len() * QBLOCK_LANES) }
}

/// Views a block buffer as its flat code content, mutably.
#[inline]
fn qblocks_as_mut_codes(blocks: &mut [QBlock]) -> &mut [i8] {
    // SAFETY: as in `qblocks_as_codes`; exclusive borrow of `blocks` makes
    // the code view unique.
    unsafe {
        std::slice::from_raw_parts_mut(
            blocks.as_mut_ptr().cast::<i8>(),
            blocks.len() * QBLOCK_LANES,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> VectorSet {
        VectorSet::from_fn(20, 16, |r, c| ((r * 31 + c * 7) % 100) as f32 - 50.0)
    }

    #[test]
    fn roundtrip_error_is_bounded_per_dim() {
        let set = sample_set();
        let q = QuantizedSet::quantize(&set);
        let back = q.dequantize();
        for i in 0..set.len() {
            for (d, (a, b)) in set.row(i).iter().zip(back.row(i)).enumerate() {
                let bound = q.scales()[d] * 0.5 + 1e-5;
                assert!((a - b).abs() <= bound, "row {i} dim {d}: {a} vs {b} (bound {bound})");
            }
        }
    }

    #[test]
    fn negative_only_and_constant_dims_quantize_exactly_bounded() {
        // Adversarial ranges: dim 0 strictly negative, dim 1 constant,
        // dim 2 tiny range, dim 3 huge asymmetric range.
        let set = VectorSet::from_fn(17, 4, |r, c| match c {
            0 => -1000.0 - r as f32 * 3.5,
            1 => 42.25,
            2 => 1e-4 * r as f32,
            _ => {
                if r % 2 == 0 {
                    -1.0
                } else {
                    9000.0 + r as f32
                }
            }
        });
        let q = QuantizedSet::quantize(&set);
        let back = q.dequantize();
        for i in 0..set.len() {
            for (d, (a, b)) in set.row(i).iter().zip(back.row(i)).enumerate() {
                let bound = q.scales()[d] * 0.5 + 1e-5;
                assert!((a - b).abs() <= bound, "row {i} dim {d}: {a} vs {b} (bound {bound})");
            }
        }
        // The constant dimension reconstructs exactly.
        for i in 0..set.len() {
            assert_eq!(back.row(i)[1], 42.25);
        }
    }

    #[test]
    fn rows_are_aligned_and_zero_padded() {
        let set = VectorSet::from_fn(5, 37, |r, c| (r + c) as f32 + 1.0);
        let q = QuantizedSet::quantize(&set);
        assert_eq!(q.stride(), 64);
        for i in 0..q.len() {
            assert_eq!(q.row(i).as_ptr() as usize % 64, 0, "row {i} misaligned");
            let padded = q.row_padded(i);
            assert_eq!(padded.len(), q.stride());
            assert!(padded[q.dim()..].iter().all(|&c| c == 0), "row {i} padding");
        }
    }

    #[test]
    fn code_distance_matches_naive_integer_sum() {
        let set = VectorSet::from_fn(9, 23, |r, c| ((r * 13 + c * 5) % 19) as f32 * 0.7 - 4.0);
        let q = QuantizedSet::quantize(&set);
        let query: Vec<f32> = (0..23).map(|i| (i % 7) as f32 - 2.0).collect();
        let qc = q.encode(&query);
        for i in 0..q.len() {
            let want: u32 = q
                .row(i)
                .iter()
                .zip(&qc[..q.dim()])
                .map(|(&a, &b)| {
                    let d = i32::from(a) - i32::from(b);
                    (d * d) as u32
                })
                .sum();
            assert_eq!(q.code_l2_squared(i, &qc), want, "row {i}");
        }
    }

    #[test]
    fn batch_code_distance_matches_single() {
        let set = VectorSet::from_fn(11, 96, |r, c| ((r * 7 + c) % 31) as f32 * 0.3);
        let q = QuantizedSet::quantize(&set);
        let qc = q.encode(set.row(3));
        let rows: Vec<u32> = vec![0, 3, 7, 10, 5];
        let mut out = vec![0.0f32; rows.len()];
        q.batch_code_l2_squared(&rows, &qc, &mut out);
        for (i, &r) in rows.iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let want = q.code_l2_squared(r as usize, &qc) as f32;
            assert_eq!(out[i].to_bits(), want.to_bits(), "i={i}");
        }
        // Row 3 against its own encoding is exactly zero.
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn code_distance_orders_like_exact_l2() {
        // On homogeneous dimensions the code-space ordering tracks exact L2
        // closely; spot-check that the nearest row by exact distance is also
        // nearest by code distance.
        let set = VectorSet::from_fn(32, 24, |r, c| ((r * 17 + c * 3) % 29) as f32 - 14.0);
        let q = QuantizedSet::quantize(&set);
        for probe in [0usize, 9, 21, 31] {
            let query = set.row(probe).to_vec();
            let qc = q.encode(&query);
            let exact_best = (0..set.len())
                .min_by(|&a, &b| {
                    crate::distance::l2_squared(set.row(a), &query)
                        .partial_cmp(&crate::distance::l2_squared(set.row(b), &query))
                        .unwrap()
                        .then(a.cmp(&b))
                })
                .unwrap();
            let code_best = (0..q.len()).min_by_key(|&i| (q.code_l2_squared(i, &qc), i)).unwrap();
            assert_eq!(exact_best, code_best, "probe {probe}");
        }
    }

    #[test]
    fn push_uses_frozen_parameters_and_clamps() {
        let set = sample_set();
        let mut q = QuantizedSet::quantize(&set);
        let scales = q.scales().to_vec();
        q.push(&[1e9; 16]); // far outside the trained range
        assert_eq!(q.len(), 21);
        assert_eq!(q.scales(), &scales[..], "push must not retrain");
        assert!(q.row(20).iter().all(|&c| c == 127), "out-of-range values clamp");
    }

    #[test]
    fn footprint_is_roughly_a_quarter() {
        // dim 64 aligns in both storages, so the code payload is exactly a
        // quarter of the f32 payload; scales/offsets add 2·dim·4 bytes.
        let set = VectorSet::from_fn(10, 64, |_, _| 1.0);
        let q = QuantizedSet::quantize(&set);
        assert_eq!((q.nbytes() - 2 * 64 * 4) * 4, set.nbytes());
    }

    #[test]
    fn zero_set_quantizes() {
        let set = VectorSet::from_fn(3, 4, |_, _| 0.0);
        let q = QuantizedSet::quantize(&set);
        assert_eq!(q.scales(), &[1.0; 4]);
        assert_eq!(q.offsets(), &[0.0; 4]);
        assert!(q.dequantize().as_flat().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dim_zero_set_reports_len_zero() {
        // Regression: `len()` used to compute `data.len() / dim` and died
        // with a divide-by-zero on dim-0 sets.
        let q = QuantizedSet::try_from_parts(0, 0, Vec::new(), Vec::new(), &[]).unwrap();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert_eq!(q.dim(), 0);
        assert_eq!(q.nbytes(), 0);
    }

    #[test]
    fn from_parts_roundtrip_is_identical() {
        let set = VectorSet::from_fn(7, 100, |r, c| ((r * 3 + c) % 23) as f32 * 1.3 - 11.0);
        let q = QuantizedSet::quantize(&set);
        let back = QuantizedSet::try_from_parts(
            q.dim(),
            q.len(),
            q.scales().to_vec(),
            q.offsets().to_vec(),
            q.as_padded_codes(),
        )
        .unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn from_parts_rejects_shape_violations() {
        let set = sample_set();
        let q = QuantizedSet::quantize(&set);
        // Truncated codes.
        let codes = q.as_padded_codes();
        assert!(QuantizedSet::try_from_parts(
            q.dim(),
            q.len(),
            q.scales().to_vec(),
            q.offsets().to_vec(),
            &codes[..codes.len() - 1],
        )
        .is_err());
        // Wrong parameter count.
        assert!(QuantizedSet::try_from_parts(
            q.dim(),
            q.len(),
            vec![1.0; q.dim() - 1],
            q.offsets().to_vec(),
            codes,
        )
        .is_err());
        // Corrupt (non-positive) scale.
        let mut bad = q.scales().to_vec();
        bad[0] = 0.0;
        assert!(QuantizedSet::try_from_parts(q.dim(), q.len(), bad, q.offsets().to_vec(), codes,)
            .is_err());
        // Rows claimed on a dim-0 set.
        assert!(QuantizedSet::try_from_parts(0, 3, Vec::new(), Vec::new(), &[]).is_err());
    }

    #[test]
    fn empty_set_quantizes_to_empty() {
        let set = VectorSet::empty(19);
        let q = QuantizedSet::quantize(&set);
        assert!(q.is_empty());
        assert_eq!(q.dim(), 19);
        assert_eq!(q.scales(), &[1.0; 19]);
        assert_eq!(q.as_padded_codes().len(), 0);
    }
}
