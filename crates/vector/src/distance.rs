//! Scalar distance kernels.
//!
//! The inner loops are hand-unrolled into four independent accumulators so
//! the compiler can keep them in registers and auto-vectorize; this mirrors
//! the structure of the CUDA kernel (each thread of a warp accumulates a
//! strided slice of the dimension, then reduces).

/// Squared L2 distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length (in every build profile; an earlier
/// revision only checked in debug builds and silently truncated in release).
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_squared requires equal-length vectors");
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let o = i * 4;
        let d0 = a[o] - b[o];
        let d1 = a[o + 1] - b[o + 1];
        let d2 = a[o + 2] - b[o + 2];
        let d3 = a[o + 3] - b[o + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        tail += d * d;
    }
    s0 + s1 + s2 + s3 + tail
}

/// L2 (Euclidean) distance.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_squared(a, b).sqrt()
}

/// Inner product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length (in every build profile).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot requires equal-length vectors");
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let o = i * 4;
        s0 += a[o] * b[o];
        s1 += a[o + 1] * b[o + 1];
        s2 += a[o + 2] * b[o + 2];
        s3 += a[o + 3] * b[o + 3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    s0 + s1 + s2 + s3 + tail
}

/// Computes squared-L2 distances from `query` to each listed row of `set`,
/// writing into `out`.
///
/// Rows are processed in blocks of four, each keeping the same four column
/// accumulators as [`l2_squared`]: the query stays register-resident across
/// the block and the four per-row dependency chains are independent, so the
/// gather amortizes query loads and hides FP latency. Because every row runs
/// the exact [`l2_squared`] operation sequence, results are bitwise identical
/// to the scalar path — callers (the search kernel) rely on this for
/// counter-neutral batching.
///
/// # Panics
///
/// Panics if `out.len() != rows.len()`, if `query.len() != set.dim()`, or if
/// any row index is out of range.
pub fn batch_l2_squared(
    set: &crate::matrix::VectorSet,
    rows: &[u32],
    query: &[f32],
    out: &mut [f32],
) {
    assert_eq!(out.len(), rows.len(), "output length must match row count");
    assert_eq!(query.len(), set.dim(), "query dimension must match the set");
    let blocks = rows.len() / 4;
    for blk in 0..blocks {
        let b = blk * 4;
        let r = [
            set.row(rows[b] as usize),
            set.row(rows[b + 1] as usize),
            set.row(rows[b + 2] as usize),
            set.row(rows[b + 3] as usize),
        ];
        let d = l2_squared_x4(r, query);
        out[b..b + 4].copy_from_slice(&d);
    }
    for i in blocks * 4..rows.len() {
        out[i] = l2_squared(set.row(rows[i] as usize), query);
    }
}

/// Four simultaneous squared-L2 distances against one query.
///
/// Each row uses the identical accumulator structure (and therefore the
/// identical FP operation order) as [`l2_squared`], so the results are
/// bitwise equal to four scalar calls.
#[inline]
fn l2_squared_x4(r: [&[f32]; 4], query: &[f32]) -> [f32; 4] {
    let dim = query.len();
    let chunks = dim / 4;
    // acc[k] holds row k's four partial sums (s0..s3 of `l2_squared`).
    let mut acc = [[0.0f32; 4]; 4];
    for i in 0..chunks {
        let o = i * 4;
        for k in 0..4 {
            let row = r[k];
            let d0 = row[o] - query[o];
            let d1 = row[o + 1] - query[o + 1];
            let d2 = row[o + 2] - query[o + 2];
            let d3 = row[o + 3] - query[o + 3];
            acc[k][0] += d0 * d0;
            acc[k][1] += d1 * d1;
            acc[k][2] += d2 * d2;
            acc[k][3] += d3 * d3;
        }
    }
    let mut out = [0.0f32; 4];
    for k in 0..4 {
        let mut tail = 0.0f32;
        for i in chunks * 4..dim {
            let d = r[k][i] - query[i];
            tail += d * d;
        }
        out[k] = acc[k][0] + acc[k][1] + acc[k][2] + acc[k][3] + tail;
    }
    out
}

/// Multi-query variant of [`batch_l2_squared`]: distances from every row of
/// `queries` to each listed row of `set`.
///
/// `out[q * rows.len() + i]` receives the distance from query `q` to
/// `rows[i]`. Gathered rows are reused across the query batch while still
/// cache-hot, which is the dominant win for ground-truth style all-pairs
/// scans. Results are bitwise identical to per-pair [`l2_squared`] calls.
///
/// # Panics
///
/// Panics if `out.len() != rows.len() * queries.len()`, if the dimensions
/// disagree, or if any row index is out of range.
pub fn batch_l2_squared_mq(
    set: &crate::matrix::VectorSet,
    rows: &[u32],
    queries: &crate::matrix::VectorSet,
    out: &mut [f32],
) {
    assert_eq!(out.len(), rows.len() * queries.len(), "output length must be rows x queries");
    assert_eq!(queries.dim(), set.dim(), "query dimension must match the set");
    let blocks = rows.len() / 4;
    for blk in 0..blocks {
        let b = blk * 4;
        let r = [
            set.row(rows[b] as usize),
            set.row(rows[b + 1] as usize),
            set.row(rows[b + 2] as usize),
            set.row(rows[b + 3] as usize),
        ];
        for (q, query) in queries.iter().enumerate() {
            let d = l2_squared_x4(r, query);
            let o = q * rows.len() + b;
            out[o..o + 4].copy_from_slice(&d);
        }
    }
    for i in blocks * 4..rows.len() {
        let row = set.row(rows[i] as usize);
        for (q, query) in queries.iter().enumerate() {
            out[q * rows.len() + i] = l2_squared(row, query);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::VectorSet;

    fn naive_l2sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn matches_naive_on_odd_lengths() {
        for len in [1usize, 2, 3, 4, 5, 7, 8, 15, 96, 128, 129, 960] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            let got = l2_squared(&a, &b);
            let want = naive_l2sq(&a, &b);
            assert!((got - want).abs() <= 1e-4 * want.max(1.0), "len={len}: {got} vs {want}");
        }
    }

    #[test]
    fn zero_distance_to_self() {
        let a: Vec<f32> = (0..128).map(|i| i as f32).collect();
        assert_eq!(l2_squared(&a, &a), 0.0);
        assert_eq!(l2(&a, &a), 0.0);
    }

    #[test]
    fn l2_is_sqrt_of_squared() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        assert_eq!(l2_squared(&a, &b), 25.0);
        assert_eq!(l2(&a, &b), 5.0);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| 37.0 - i as f32).collect();
        let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - want).abs() < 1e-2);
    }

    #[test]
    fn batch_matches_scalar() {
        let set = VectorSet::from_fn(10, 16, |r, c| (r * c) as f32 * 0.1);
        let q: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let rows = [0u32, 3, 9];
        let mut out = [0.0f32; 3];
        batch_l2_squared(&set, &rows, &q, &mut out);
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(out[i], l2_squared(set.row(r as usize), &q));
        }
    }

    #[test]
    fn batch_is_bitwise_equal_across_block_boundaries() {
        // Lengths around the 4-row blocking boundary, and a non-multiple-of-4
        // dimension for the tail path. The search kernel's counter neutrality
        // depends on bitwise equality, not mere closeness.
        let set = VectorSet::from_fn(23, 37, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.37 - 2.0);
        let q: Vec<f32> = (0..37).map(|i| (i as f32 * 0.61).sin()).collect();
        for n in [0usize, 1, 3, 4, 5, 8, 11, 23] {
            let rows: Vec<u32> = (0..n).map(|i| ((i * 5) % 23) as u32).collect();
            let mut out = vec![0.0f32; n];
            batch_l2_squared(&set, &rows, &q, &mut out);
            for (i, &r) in rows.iter().enumerate() {
                let want = l2_squared(set.row(r as usize), &q);
                assert_eq!(out[i].to_bits(), want.to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn multi_query_matches_scalar_bitwise() {
        let set = VectorSet::from_fn(17, 24, |r, c| ((r + 3) * (c + 1)) as f32 * 0.05);
        let queries = VectorSet::from_fn(5, 24, |r, c| (r as f32 - c as f32) * 0.2);
        let rows: Vec<u32> = vec![0, 2, 4, 6, 8, 10, 16];
        let mut out = vec![0.0f32; rows.len() * queries.len()];
        batch_l2_squared_mq(&set, &rows, &queries, &mut out);
        for q in 0..queries.len() {
            for (i, &r) in rows.iter().enumerate() {
                let want = l2_squared(set.row(r as usize), queries.row(q));
                assert_eq!(out[q * rows.len() + i].to_bits(), want.to_bits(), "q={q} i={i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic_in_all_profiles() {
        let _ = l2_squared(&[1.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "query dimension")]
    fn batch_rejects_wrong_query_dim() {
        let set = VectorSet::from_fn(4, 8, |_, _| 0.0);
        let mut out = [0.0f32; 1];
        batch_l2_squared(&set, &[0], &[0.0; 7], &mut out);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn symmetry(v in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..256)) {
            let (a, b): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
            let ab = l2_squared(&a, &b);
            let ba = l2_squared(&b, &a);
            prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0));
        }

        #[test]
        fn non_negative(v in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..128)) {
            let (a, b): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
            prop_assert!(l2_squared(&a, &b) >= 0.0);
        }

        #[test]
        fn blocked_batch_matches_scalar(v in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..192)) {
            // The blocked kernel must agree with the scalar kernel within
            // 1e-4 relative error on arbitrary inputs (it is in fact bitwise
            // equal; the tolerance guards the weaker public contract).
            let (row, q): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
            let dim = row.len();
            // Six rows: one full 4-block plus a tail, derived from the row.
            let set = crate::matrix::VectorSet::from_fn(6, dim, |r, c| row[c] * (1.0 + r as f32 * 0.25));
            let rows: Vec<u32> = (0..6).collect();
            let mut out = vec![0.0f32; 6];
            batch_l2_squared(&set, &rows, &q, &mut out);
            for (i, &got) in out.iter().enumerate() {
                let want = l2_squared(set.row(i), &q);
                prop_assert!((got - want).abs() <= 1e-4 * want.abs().max(1.0), "row {}: {} vs {}", i, got, want);
            }
        }

        #[test]
        fn triangle_inequality(v in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0), 1..64)) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            let mut c = Vec::new();
            for (x, y, z) in v {
                a.push(x);
                b.push(y);
                c.push(z);
            }
            let ab = l2(&a, &b);
            let bc = l2(&b, &c);
            let ac = l2(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-3);
        }
    }
}
