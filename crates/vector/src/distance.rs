//! Distance kernel entry points.
//!
//! These free functions are the workspace-wide distance API; they forward to
//! the runtime-dispatched SIMD kernels in [`crate::simd`] (AVX2/SSE2 on
//! x86_64, NEON on aarch64, 4-accumulator scalar everywhere else). Every
//! dispatch level executes the identical FP operation sequence, so results
//! are **bitwise identical** regardless of the selected level — the search
//! kernel's simulated-clock counters rely on this. See the [`crate::simd`]
//! module docs for the lane-structure invariant, and `PATHWEAVER_SIMD` to
//! override the selected level.

use crate::simd::active_kernels;

/// Squared L2 distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length (in every build profile; an earlier
/// revision only checked in debug builds and silently truncated in release).
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    active_kernels().l2_squared(a, b)
}

/// L2 (Euclidean) distance.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_squared(a, b).sqrt()
}

/// Inner product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length (in every build profile).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    active_kernels().dot(a, b)
}

/// Computes squared-L2 distances from `query` to each listed row of `set`,
/// writing into `out`.
///
/// Rows are processed in blocks of four, each keeping the same four column
/// accumulators as [`l2_squared`]: the query stays register-resident across
/// the block and the four per-row dependency chains are independent, so the
/// gather amortizes query loads and hides FP latency. Because every row runs
/// the exact [`l2_squared`] operation sequence, results are bitwise identical
/// to the scalar path — callers (the search kernel) rely on this for
/// counter-neutral batching.
///
/// # Panics
///
/// Panics if `out.len() != rows.len()`, if `query.len() != set.dim()`, or if
/// any row index is out of range.
pub fn batch_l2_squared(
    set: &crate::matrix::VectorSet,
    rows: &[u32],
    query: &[f32],
    out: &mut [f32],
) {
    active_kernels().batch_l2_squared(set, rows, query, out);
}

/// Multi-query variant of [`batch_l2_squared`]: distances from every row of
/// `queries` to each listed row of `set`.
///
/// `out[q * rows.len() + i]` receives the distance from query `q` to
/// `rows[i]`. Gathered rows are reused across the query batch while still
/// cache-hot, which is the dominant win for ground-truth style all-pairs
/// scans. Results are bitwise identical to per-pair [`l2_squared`] calls.
///
/// # Panics
///
/// Panics if `out.len() != rows.len() * queries.len()`, if the dimensions
/// disagree, or if any row index is out of range.
pub fn batch_l2_squared_mq(
    set: &crate::matrix::VectorSet,
    rows: &[u32],
    queries: &crate::matrix::VectorSet,
    out: &mut [f32],
) {
    active_kernels().batch_l2_squared_mq(set, rows, queries, out);
}

/// Squared-L2 distances from `query` to the consecutive rows
/// `first_row..first_row + out.len()` of `set`.
///
/// The dense sibling of [`batch_l2_squared`] for brute-force scans (ground
/// truth, exact k-NN oracles, inter-shard tables) that walk every row and
/// need no gather list. Results are bitwise identical to per-row
/// [`l2_squared`] calls over the same range.
///
/// # Panics
///
/// Panics if the row range exceeds `set.len()` or `query.len() != set.dim()`.
pub fn l2_squared_rows(
    set: &crate::matrix::VectorSet,
    first_row: usize,
    query: &[f32],
    out: &mut [f32],
) {
    active_kernels().l2_squared_rows(set, first_row, query, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::VectorSet;

    fn naive_l2sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn matches_naive_on_odd_lengths() {
        for len in [1usize, 2, 3, 4, 5, 7, 8, 15, 96, 128, 129, 960] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            let got = l2_squared(&a, &b);
            let want = naive_l2sq(&a, &b);
            assert!((got - want).abs() <= 1e-4 * want.max(1.0), "len={len}: {got} vs {want}");
        }
    }

    #[test]
    fn zero_distance_to_self() {
        let a: Vec<f32> = (0..128).map(|i| i as f32).collect();
        assert_eq!(l2_squared(&a, &a), 0.0);
        assert_eq!(l2(&a, &a), 0.0);
    }

    #[test]
    fn l2_is_sqrt_of_squared() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        assert_eq!(l2_squared(&a, &b), 25.0);
        assert_eq!(l2(&a, &b), 5.0);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| 37.0 - i as f32).collect();
        let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - want).abs() < 1e-2);
    }

    #[test]
    fn batch_matches_scalar() {
        let set = VectorSet::from_fn(10, 16, |r, c| (r * c) as f32 * 0.1);
        let q: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let rows = [0u32, 3, 9];
        let mut out = [0.0f32; 3];
        batch_l2_squared(&set, &rows, &q, &mut out);
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(out[i], l2_squared(set.row(r as usize), &q));
        }
    }

    #[test]
    fn batch_is_bitwise_equal_across_block_boundaries() {
        // Lengths around the 4-row blocking boundary, and a non-multiple-of-4
        // dimension for the tail path. The search kernel's counter neutrality
        // depends on bitwise equality, not mere closeness.
        let set = VectorSet::from_fn(23, 37, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.37 - 2.0);
        let q: Vec<f32> = (0..37).map(|i| (i as f32 * 0.61).sin()).collect();
        for n in [0usize, 1, 3, 4, 5, 8, 11, 23] {
            let rows: Vec<u32> = (0..n).map(|i| u32::try_from((i * 5) % 23).unwrap()).collect();
            let mut out = vec![0.0f32; n];
            batch_l2_squared(&set, &rows, &q, &mut out);
            for (i, &r) in rows.iter().enumerate() {
                let want = l2_squared(set.row(r as usize), &q);
                assert_eq!(out[i].to_bits(), want.to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn multi_query_matches_scalar_bitwise() {
        let set = VectorSet::from_fn(17, 24, |r, c| ((r + 3) * (c + 1)) as f32 * 0.05);
        let queries = VectorSet::from_fn(5, 24, |r, c| (r as f32 - c as f32) * 0.2);
        let rows: Vec<u32> = vec![0, 2, 4, 6, 8, 10, 16];
        let mut out = vec![0.0f32; rows.len() * queries.len()];
        batch_l2_squared_mq(&set, &rows, &queries, &mut out);
        for q in 0..queries.len() {
            for (i, &r) in rows.iter().enumerate() {
                let want = l2_squared(set.row(r as usize), queries.row(q));
                assert_eq!(out[q * rows.len() + i].to_bits(), want.to_bits(), "q={q} i={i}");
            }
        }
    }

    #[test]
    fn dense_rows_match_scalar_bitwise() {
        let set = VectorSet::from_fn(13, 29, |r, c| ((r * 7 + c) % 11) as f32 * 0.41 - 1.5);
        let q: Vec<f32> = (0..29).map(|i| (i as f32 * 0.23).cos()).collect();
        for (first, n) in [(0usize, 13usize), (2, 9), (5, 0), (12, 1), (3, 6)] {
            let mut out = vec![0.0f32; n];
            l2_squared_rows(&set, first, &q, &mut out);
            for (i, &got) in out.iter().enumerate() {
                let want = l2_squared(set.row(first + i), &q);
                assert_eq!(got.to_bits(), want.to_bits(), "first={first} i={i}");
            }
        }
    }

    #[test]
    fn aligned_storage_is_bitwise_equal_to_compact() {
        let compact = VectorSet::from_fn(21, 37, |r, c| ((r * 13 + c * 3) % 17) as f32 * 0.31);
        let aligned = compact.clone().into_aligned();
        let q: Vec<f32> = (0..37).map(|i| (i as f32 * 0.47).sin() * 2.0).collect();
        let rows: Vec<u32> = (0..21).map(|i| ((i * 11) % 21) as u32).collect();
        let (mut out_c, mut out_a) = (vec![0.0f32; 21], vec![0.0f32; 21]);
        batch_l2_squared(&compact, &rows, &q, &mut out_c);
        batch_l2_squared(&aligned, &rows, &q, &mut out_a);
        for i in 0..21 {
            assert_eq!(out_c[i].to_bits(), out_a[i].to_bits(), "i={i}");
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic_in_all_profiles() {
        let _ = l2_squared(&[1.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "query dimension")]
    fn batch_rejects_wrong_query_dim() {
        let set = VectorSet::from_fn(4, 8, |_, _| 0.0);
        let mut out = [0.0f32; 1];
        batch_l2_squared(&set, &[0], &[0.0; 7], &mut out);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn symmetry(v in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..256)) {
            let (a, b): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
            let ab = l2_squared(&a, &b);
            let ba = l2_squared(&b, &a);
            prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0));
        }

        #[test]
        fn non_negative(v in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..128)) {
            let (a, b): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
            prop_assert!(l2_squared(&a, &b) >= 0.0);
        }

        #[test]
        fn blocked_batch_matches_scalar(v in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..192)) {
            // The blocked kernel must agree with the scalar kernel within
            // 1e-4 relative error on arbitrary inputs (it is in fact bitwise
            // equal; the tolerance guards the weaker public contract).
            let (row, q): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
            let dim = row.len();
            // Six rows: one full 4-block plus a tail, derived from the row.
            let set = crate::matrix::VectorSet::from_fn(6, dim, |r, c| row[c] * (1.0 + r as f32 * 0.25));
            let rows: Vec<u32> = (0..6).collect();
            let mut out = vec![0.0f32; 6];
            batch_l2_squared(&set, &rows, &q, &mut out);
            for (i, &got) in out.iter().enumerate() {
                let want = l2_squared(set.row(i), &q);
                prop_assert!((got - want).abs() <= 1e-4 * want.abs().max(1.0), "row {}: {} vs {}", i, got, want);
            }
        }

        #[test]
        fn triangle_inequality(v in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0), 1..64)) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            let mut c = Vec::new();
            for (x, y, z) in v {
                a.push(x);
                b.push(y);
                c.push(z);
            }
            let ab = l2(&a, &b);
            let bc = l2(&b, &c);
            let ac = l2(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-3);
        }
    }
}
