//! Scalar distance kernels.
//!
//! The inner loops are hand-unrolled into four independent accumulators so
//! the compiler can keep them in registers and auto-vectorize; this mirrors
//! the structure of the CUDA kernel (each thread of a warp accumulates a
//! strided slice of the dimension, then reduces).

/// Squared L2 distance between two equal-length vectors.
///
/// # Panics
///
/// Panics (in debug builds) if the slices differ in length; release builds
/// truncate to the shorter length via the zip.
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let o = i * 4;
        let d0 = a[o] - b[o];
        let d1 = a[o + 1] - b[o + 1];
        let d2 = a[o + 2] - b[o + 2];
        let d3 = a[o + 3] - b[o + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        tail += d * d;
    }
    s0 + s1 + s2 + s3 + tail
}

/// L2 (Euclidean) distance.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_squared(a, b).sqrt()
}

/// Inner product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let o = i * 4;
        s0 += a[o] * b[o];
        s1 += a[o + 1] * b[o + 1];
        s2 += a[o + 2] * b[o + 2];
        s3 += a[o + 3] * b[o + 3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    s0 + s1 + s2 + s3 + tail
}

/// Computes squared-L2 distances from `query` to each listed row of `set`,
/// writing into `out`.
///
/// # Panics
///
/// Panics if `out.len() != rows.len()`.
pub fn batch_l2_squared(
    set: &crate::matrix::VectorSet,
    rows: &[u32],
    query: &[f32],
    out: &mut [f32],
) {
    assert_eq!(out.len(), rows.len());
    for (o, &r) in out.iter_mut().zip(rows) {
        *o = l2_squared(set.row(r as usize), query);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::VectorSet;

    fn naive_l2sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn matches_naive_on_odd_lengths() {
        for len in [1usize, 2, 3, 4, 5, 7, 8, 15, 96, 128, 129, 960] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            let got = l2_squared(&a, &b);
            let want = naive_l2sq(&a, &b);
            assert!((got - want).abs() <= 1e-4 * want.max(1.0), "len={len}: {got} vs {want}");
        }
    }

    #[test]
    fn zero_distance_to_self() {
        let a: Vec<f32> = (0..128).map(|i| i as f32).collect();
        assert_eq!(l2_squared(&a, &a), 0.0);
        assert_eq!(l2(&a, &a), 0.0);
    }

    #[test]
    fn l2_is_sqrt_of_squared() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        assert_eq!(l2_squared(&a, &b), 25.0);
        assert_eq!(l2(&a, &b), 5.0);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| 37.0 - i as f32).collect();
        let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - want).abs() < 1e-2);
    }

    #[test]
    fn batch_matches_scalar() {
        let set = VectorSet::from_fn(10, 16, |r, c| (r * c) as f32 * 0.1);
        let q: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let rows = [0u32, 3, 9];
        let mut out = [0.0f32; 3];
        batch_l2_squared(&set, &rows, &q, &mut out);
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(out[i], l2_squared(set.row(r as usize), &q));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn symmetry(v in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..256)) {
            let (a, b): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
            let ab = l2_squared(&a, &b);
            let ba = l2_squared(&b, &a);
            prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0));
        }

        #[test]
        fn non_negative(v in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..128)) {
            let (a, b): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
            prop_assert!(l2_squared(&a, &b) >= 0.0);
        }

        #[test]
        fn triangle_inequality(v in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0), 1..64)) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            let mut c = Vec::new();
            for (x, y, z) in v {
                a.push(x);
                b.push(y);
                c.push(z);
            }
            let ab = l2(&a, &b);
            let bc = l2(&b, &c);
            let ac = l2(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-3);
        }
    }
}
