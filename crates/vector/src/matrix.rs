//! Dense row-major vector storage.

use serde::{Deserialize, Serialize};

/// One 64-byte-aligned group of 16 `f32` lanes — the allocation unit of the
/// aligned storage mode. `repr(C, align(64))` with a 64-byte payload means a
/// `Vec<Block>` is a gap-free `f32` buffer whose base (and every 16-float
/// boundary) sits on a cache line.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy)]
struct Block([f32; 16]);

/// Floats per [`Block`].
const BLOCK_LANES: usize = 16;

/// Physical row stride (in floats) for an aligned set of dimensionality
/// `dim`: the dimension rounded up to a whole number of blocks, so every row
/// starts on a 64-byte boundary.
fn aligned_stride(dim: usize) -> usize {
    dim.div_ceil(BLOCK_LANES) * BLOCK_LANES
}

/// Backing buffer of a [`VectorSet`].
#[derive(Debug, Clone)]
enum Storage {
    /// Tightly packed rows (`stride == dim`), the historical layout.
    Compact(Vec<f32>),
    /// 64-byte-aligned rows padded with zeros to a multiple of 16 floats.
    /// The padding is *storage only*: kernels receive the logical `dim`
    /// prefix of each row, never the padding lanes (processing them would
    /// change the scalar kernels' chunk/tail split and break the bitwise
    /// identity the dispatch layer guarantees).
    Aligned(Vec<Block>),
}

/// A dense, row-major matrix of `f32` vectors: `len` rows of `dim` columns.
///
/// This is the canonical in-memory representation of a dataset, a shard, a
/// ghost shard, or a query batch. Rows are contiguous so a single row maps to
/// one coalesced vector load in the simulated GPU cost model.
///
/// Two storage modes share the same logical interface:
///
/// - **Compact** (the default): rows tightly packed, `stride == dim`.
/// - **Aligned** ([`VectorSet::into_aligned`]): every row starts on a 64-byte
///   boundary and is zero-padded to a multiple of 16 floats. SIMD kernels
///   then never straddle a cache line at a row start. The logical `dim` is
///   preserved; [`VectorSet::row`] always returns exactly `dim` floats, so
///   distances over aligned and compact sets are bitwise identical.
#[derive(Debug, Clone)]
pub struct VectorSet {
    dim: usize,
    /// Physical floats from one row start to the next.
    stride: usize,
    /// Number of logical rows (redundant for `Compact`, authoritative for
    /// `Aligned`, where the buffer length alone cannot distinguish an empty
    /// set from its capacity).
    len: usize,
    storage: Storage,
}

impl VectorSet {
    /// Creates a set from a flat row-major buffer (compact storage).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} not a multiple of dim {dim}",
            data.len()
        );
        let len = data.len() / dim;
        Self { dim, stride: dim, len, storage: Storage::Compact(data) }
    }

    /// Creates a set from a flat row-major buffer directly into aligned
    /// storage (64-byte row alignment, zero padding to 16-float multiples).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat_aligned(dim: usize, data: Vec<f32>) -> Self {
        Self::from_flat(dim, data).into_aligned()
    }

    /// Creates an empty set with the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Self::from_flat(dim, Vec::new())
    }

    /// Creates a set of `len` rows produced by `f(row, col)`.
    pub fn from_fn(len: usize, dim: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(len * dim);
        for r in 0..len {
            for c in 0..dim {
                data.push(f(r, c));
            }
        }
        Self::from_flat(dim, data)
    }

    /// Converts to aligned storage (no-op when already aligned).
    ///
    /// Aligned rows start on 64-byte boundaries and are padded with zeros up
    /// to a multiple of 16 floats; the logical dimensionality and every
    /// distance computed through [`VectorSet::row`] are unchanged.
    pub fn into_aligned(self) -> Self {
        match self.storage {
            Storage::Aligned(_) => self,
            Storage::Compact(data) => {
                let stride = aligned_stride(self.dim);
                let mut blocks = vec![Block([0.0; BLOCK_LANES]); self.len * stride / BLOCK_LANES];
                {
                    let flat = blocks_as_mut_floats(&mut blocks);
                    for (r, row) in data.chunks_exact(self.dim).enumerate() {
                        flat[r * stride..r * stride + self.dim].copy_from_slice(row);
                    }
                }
                Self { dim: self.dim, stride, len: self.len, storage: Storage::Aligned(blocks) }
            }
        }
    }

    /// Whether this set uses the aligned (padded) storage mode.
    pub fn is_aligned(&self) -> bool {
        matches!(self.storage, Storage::Aligned(_))
    }

    /// Returns the vector dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Physical floats from one row start to the next (`dim` for compact
    /// storage, `dim` rounded up to a multiple of 16 for aligned storage).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Returns the number of vectors `n`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the set holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The full physical buffer, including padding lanes when aligned.
    #[inline]
    fn physical(&self) -> &[f32] {
        match &self.storage {
            Storage::Compact(data) => data,
            Storage::Aligned(blocks) => blocks_as_floats(blocks),
        }
    }

    /// Returns row `i` as a slice of exactly `dim` floats (never padding).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.len, "row index {i} out of range for {} rows", self.len);
        let start = i * self.stride;
        &self.physical()[start..start + self.dim]
    }

    /// Returns row `i` including its zero padding lanes (`stride` floats).
    ///
    /// Aligned-storage introspection for tests and layout-aware code; the
    /// distance kernels themselves only ever consume [`VectorSet::row`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row_padded(&self, i: usize) -> &[f32] {
        assert!(i < self.len, "row index {i} out of range for {} rows", self.len);
        let start = i * self.stride;
        &self.physical()[start..start + self.stride]
    }

    /// Returns row `i` mutably.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.len, "row index {i} out of range for {} rows", self.len);
        let start = i * self.stride;
        let dim = self.dim;
        let flat = match &mut self.storage {
            Storage::Compact(data) => data.as_mut_slice(),
            Storage::Aligned(blocks) => blocks_as_mut_floats(blocks),
        };
        &mut flat[start..start + dim]
    }

    /// Returns the flat row-major buffer of a compact set.
    ///
    /// # Panics
    ///
    /// Panics on aligned storage, where no padding-free flat view exists —
    /// iterate rows (or [`VectorSet::row`]) instead.
    pub fn as_flat(&self) -> &[f32] {
        match &self.storage {
            Storage::Compact(data) => data,
            Storage::Aligned(_) => {
                panic!("as_flat is only available on compact storage; iterate rows instead")
            }
        }
    }

    /// Appends a vector (preserving the storage mode).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "pushed vector has wrong dimension");
        match &mut self.storage {
            Storage::Compact(data) => data.extend_from_slice(v),
            Storage::Aligned(blocks) => {
                let start = self.len * self.stride;
                blocks.resize((start + self.stride) / BLOCK_LANES, Block([0.0; BLOCK_LANES]));
                blocks_as_mut_floats(blocks)[start..start + self.dim].copy_from_slice(v);
            }
        }
        self.len += 1;
    }

    /// Builds a new set containing the given rows, in order, preserving the
    /// storage mode.
    ///
    /// Used to materialize shards and ghost shards from a parent dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, rows: &[usize]) -> Self {
        match &self.storage {
            Storage::Compact(_) => {
                let mut data = Vec::with_capacity(rows.len() * self.dim);
                for &r in rows {
                    data.extend_from_slice(self.row(r));
                }
                Self::from_flat(self.dim, data)
            }
            Storage::Aligned(_) => {
                let mut blocks =
                    vec![Block([0.0; BLOCK_LANES]); rows.len() * self.stride / BLOCK_LANES];
                {
                    let flat = blocks_as_mut_floats(&mut blocks);
                    for (i, &r) in rows.iter().enumerate() {
                        flat[i * self.stride..i * self.stride + self.dim]
                            .copy_from_slice(self.row(r));
                    }
                }
                Self {
                    dim: self.dim,
                    stride: self.stride,
                    len: rows.len(),
                    storage: Storage::Aligned(blocks),
                }
            }
        }
    }

    /// The full physical buffer — `len * stride` floats, padding lanes
    /// included on aligned storage.
    ///
    /// This is the persistence view: the durable store writes it verbatim
    /// and reads it back with [`VectorSet::from_padded_flat`], so a saved
    /// aligned set reloads with zero per-record work.
    pub fn as_padded_flat(&self) -> &[f32] {
        &self.physical()[..self.len * self.stride]
    }

    /// Rebuilds an aligned set from its physical buffer (`len * stride`
    /// floats as returned by [`VectorSet::as_padded_flat`] on an aligned
    /// set, where `stride` is `dim` rounded up to a multiple of 16).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `data.len() != len * aligned_stride(dim)`.
    pub fn from_padded_flat(dim: usize, len: usize, data: &[f32]) -> Self {
        match Self::try_from_padded_flat(dim, len, data) {
            Ok(set) => set,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`VectorSet::from_padded_flat`] for loaders that must
    /// turn shape violations into recoverable errors.
    ///
    /// # Errors
    ///
    /// A description of the violation when `dim == 0` or the buffer length
    /// disagrees with `len * aligned_stride(dim)`.
    pub fn try_from_padded_flat(dim: usize, len: usize, data: &[f32]) -> Result<Self, String> {
        if dim == 0 {
            return Err("dim must be positive".into());
        }
        let stride = aligned_stride(dim);
        if data.len() != len * stride {
            return Err(format!("padded buffer length mismatch for {len} rows of stride {stride}"));
        }
        let mut blocks = vec![Block([0.0; BLOCK_LANES]); len * stride / BLOCK_LANES];
        blocks_as_mut_floats(&mut blocks).copy_from_slice(data);
        Ok(Self { dim, stride, len, storage: Storage::Aligned(blocks) })
    }

    /// Iterates over rows (logical `dim` floats each, never padding).
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        let flat = self.physical();
        (0..self.len).map(move |i| &flat[i * self.stride..i * self.stride + self.dim])
    }

    /// Returns the memory footprint of the raw vector data in bytes
    /// (including padding lanes when aligned).
    pub fn nbytes(&self) -> usize {
        self.len * self.stride * std::mem::size_of::<f32>()
    }
}

/// Views a block buffer as its flat float content.
#[inline]
fn blocks_as_floats(blocks: &[Block]) -> &[f32] {
    // SAFETY: `Block` is `repr(C)` with a single `[f32; 16]` field and no
    // padding bytes (size 64 == align 64), so a block slice is exactly a
    // contiguous, initialized `f32` buffer of 16x the length.
    unsafe { std::slice::from_raw_parts(blocks.as_ptr().cast::<f32>(), blocks.len() * BLOCK_LANES) }
}

/// Views a block buffer as its flat float content, mutably.
#[inline]
fn blocks_as_mut_floats(blocks: &mut [Block]) -> &mut [f32] {
    // SAFETY: as in `blocks_as_floats`; exclusive borrow of `blocks` makes
    // the float view unique.
    unsafe {
        std::slice::from_raw_parts_mut(
            blocks.as_mut_ptr().cast::<f32>(),
            blocks.len() * BLOCK_LANES,
        )
    }
}

// Equality, like serialization, is over the logical contents: an aligned set
// equals its compact twin. (Derived eq would compare padding and strides.)
impl PartialEq for VectorSet {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Serialize for VectorSet {
    fn to_value(&self) -> serde::Value {
        let mut data = Vec::with_capacity(self.len * self.dim);
        for row in self.iter() {
            data.extend_from_slice(row);
        }
        serde::Value::Object(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("data".to_string(), data.to_value()),
        ])
    }
}

impl Deserialize for VectorSet {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let dim =
            usize::from_value(v.get("dim").ok_or_else(|| serde::Error::msg("missing `dim`"))?)?;
        let data = Vec::<f32>::from_value(
            v.get("data").ok_or_else(|| serde::Error::msg("missing `data`"))?,
        )?;
        if dim == 0 || !data.len().is_multiple_of(dim) {
            return Err(serde::Error::msg("VectorSet dim/data mismatch"));
        }
        Ok(Self::from_flat(dim, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_row_access() {
        let m = VectorSet::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.len(), 3);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn push_and_gather() {
        let mut m = VectorSet::empty(2);
        m.push(&[1.0, 2.0]);
        m.push(&[3.0, 4.0]);
        m.push(&[5.0, 6.0]);
        let g = m.gather(&[2, 0]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn nbytes_counts_floats() {
        let m = VectorSet::from_fn(5, 8, |_, _| 0.0);
        assert_eq!(m.nbytes(), 5 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = VectorSet::from_flat(3, vec![0.0; 7]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn push_rejects_wrong_dim() {
        let mut m = VectorSet::empty(3);
        m.push(&[1.0]);
    }

    #[test]
    fn iter_yields_rows() {
        let m = VectorSet::from_fn(4, 2, |r, _| r as f32);
        let rows: Vec<&[f32]> = m.iter().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], &[3.0, 3.0]);
    }

    #[test]
    fn aligned_preserves_logical_contents() {
        for dim in [1usize, 3, 7, 15, 16, 17, 37, 96, 100, 128] {
            let compact = VectorSet::from_fn(9, dim, |r, c| (r * 131 + c * 17) as f32 * 0.25);
            let aligned = compact.clone().into_aligned();
            assert!(aligned.is_aligned());
            assert_eq!(aligned.dim(), dim);
            assert_eq!(aligned.len(), 9);
            assert_eq!(aligned.stride() % BLOCK_LANES, 0);
            assert!(aligned.stride() >= dim);
            for i in 0..9 {
                assert_eq!(aligned.row(i), compact.row(i), "dim={dim} row={i}");
            }
            assert_eq!(aligned, compact);
        }
    }

    #[test]
    fn aligned_rows_are_64_byte_aligned_and_zero_padded() {
        let m = VectorSet::from_fn(5, 37, |r, c| (r + c) as f32 + 1.0).into_aligned();
        for i in 0..m.len() {
            assert_eq!(m.row(i).as_ptr() as usize % 64, 0, "row {i} misaligned");
            let padded = m.row_padded(i);
            assert_eq!(padded.len(), m.stride());
            assert!(padded[m.dim()..].iter().all(|&x| x == 0.0), "row {i} padding");
        }
    }

    #[test]
    fn aligned_push_and_gather_preserve_mode() {
        let mut m = VectorSet::from_fn(2, 5, |r, c| (r * 5 + c) as f32).into_aligned();
        m.push(&[90.0, 91.0, 92.0, 93.0, 94.0]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.row(2), &[90.0, 91.0, 92.0, 93.0, 94.0]);
        let g = m.gather(&[2, 0]);
        assert!(g.is_aligned());
        assert_eq!(g.row(0), m.row(2));
        assert_eq!(g.row(1), m.row(0));
        assert_eq!(g.row(0).as_ptr() as usize % 64, 0);
    }

    #[test]
    fn aligned_nbytes_includes_padding() {
        let m = VectorSet::from_fn(4, 17, |_, _| 0.0).into_aligned();
        assert_eq!(m.stride(), 32);
        assert_eq!(m.nbytes(), 4 * 32 * 4);
    }

    #[test]
    #[should_panic(expected = "compact storage")]
    fn as_flat_rejects_aligned() {
        let m = VectorSet::from_fn(2, 3, |_, _| 1.0).into_aligned();
        let _ = m.as_flat();
    }

    #[test]
    fn serde_roundtrip_is_logical() {
        let aligned = VectorSet::from_fn(3, 7, |r, c| (r * 7 + c) as f32 * 0.5).into_aligned();
        let back = VectorSet::from_value(&aligned.to_value()).unwrap();
        assert!(!back.is_aligned());
        assert_eq!(back, aligned);
    }

    #[test]
    fn padded_flat_roundtrip() {
        for dim in [1usize, 15, 16, 17, 96] {
            let set = VectorSet::from_fn(6, dim, |r, c| (r * 31 + c) as f32 * 0.5).into_aligned();
            let raw = set.as_padded_flat().to_vec();
            assert_eq!(raw.len(), 6 * set.stride());
            let back = VectorSet::from_padded_flat(dim, 6, &raw);
            assert!(back.is_aligned());
            assert_eq!(back, set);
            assert_eq!(back.stride(), set.stride());
        }
    }

    #[test]
    #[should_panic(expected = "padded buffer length mismatch")]
    fn from_padded_flat_rejects_bad_length() {
        let _ = VectorSet::from_padded_flat(17, 2, &[0.0; 33]);
    }

    #[test]
    fn empty_aligned_set() {
        let m = VectorSet::empty(19).into_aligned();
        assert!(m.is_empty());
        assert_eq!(m.nbytes(), 0);
        assert_eq!(m.gather(&[]).len(), 0);
    }
}
