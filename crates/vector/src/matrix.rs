//! Dense row-major vector storage.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` vectors: `len` rows of `dim` columns.
///
/// This is the canonical in-memory representation of a dataset, a shard, a
/// ghost shard, or a query batch. Rows are contiguous so a single row maps to
/// one coalesced vector load in the simulated GPU cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorSet {
    dim: usize,
    data: Vec<f32>,
}

impl VectorSet {
    /// Creates a set from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} not a multiple of dim {dim}",
            data.len()
        );
        Self { dim, data }
    }

    /// Creates an empty set with the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Self::from_flat(dim, Vec::new())
    }

    /// Creates a set of `len` rows produced by `f(row, col)`.
    pub fn from_fn(len: usize, dim: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(len * dim);
        for r in 0..len {
            for c in 0..dim {
                data.push(f(r, c));
            }
        }
        Self::from_flat(dim, data)
    }

    /// Returns the vector dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the number of vectors `n`.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Returns `true` when the set holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Returns row `i` mutably.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let start = i * self.dim;
        &mut self.data[start..start + self.dim]
    }

    /// Returns the flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Appends a vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "pushed vector has wrong dimension");
        self.data.extend_from_slice(v);
    }

    /// Builds a new set containing the given rows, in order.
    ///
    /// Used to materialize shards and ghost shards from a parent dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, rows: &[usize]) -> Self {
        let mut data = Vec::with_capacity(rows.len() * self.dim);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Self { dim: self.dim, data }
    }

    /// Iterates over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// Returns the memory footprint of the raw vector data in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_row_access() {
        let m = VectorSet::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.len(), 3);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn push_and_gather() {
        let mut m = VectorSet::empty(2);
        m.push(&[1.0, 2.0]);
        m.push(&[3.0, 4.0]);
        m.push(&[5.0, 6.0]);
        let g = m.gather(&[2, 0]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn nbytes_counts_floats() {
        let m = VectorSet::from_fn(5, 8, |_, _| 0.0);
        assert_eq!(m.nbytes(), 5 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = VectorSet::from_flat(3, vec![0.0; 7]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn push_rejects_wrong_dim() {
        let mut m = VectorSet::empty(3);
        m.push(&[1.0]);
    }

    #[test]
    fn iter_yields_rows() {
        let m = VectorSet::from_fn(4, 2, |r, _| r as f32);
        let rows: Vec<&[f32]> = m.iter().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], &[3.0, 3.0]);
    }
}
