//! Similarity metrics.
//!
//! The paper (and this reproduction) defaults to squared L2: the square root
//! is monotone, so ranking by squared distance is equivalent and cheaper.
//! Inner-product and cosine are provided for completeness (Wiki-style text
//! embeddings are often searched by inner product).

use crate::distance;

/// A dissimilarity measure between two vectors: smaller is closer.
pub trait Metric: Send + Sync + Copy + 'static {
    /// Computes the dissimilarity between `a` and `b`.
    fn dist(&self, a: &[f32], b: &[f32]) -> f32;

    /// Short identifier used in reports.
    fn name(&self) -> &'static str;
}

/// Squared Euclidean distance (the default search metric).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredL2;

impl Metric for SquaredL2 {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        distance::l2_squared(a, b)
    }

    fn name(&self) -> &'static str {
        "squared-l2"
    }
}

/// Negative inner product, so that "smaller is closer" still holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InnerProduct;

impl Metric for InnerProduct {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        -distance::dot(a, b)
    }

    fn name(&self) -> &'static str {
        "neg-inner-product"
    }
}

/// Cosine distance `1 - cos(a, b)`; returns 1 for zero-norm inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cosine;

impl Metric for Cosine {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        let na = distance::dot(a, a).sqrt();
        let nb = distance::dot(b, b).sqrt();
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        1.0 - distance::dot(a, b) / (na * nb)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_l2_name_and_value() {
        let m = SquaredL2;
        assert_eq!(m.name(), "squared-l2");
        assert_eq!(m.dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn inner_product_prefers_aligned() {
        let m = InnerProduct;
        let q = [1.0f32, 0.0];
        assert!(m.dist(&q, &[2.0, 0.0]) < m.dist(&q, &[0.5, 0.0]));
        assert!(m.dist(&q, &[1.0, 0.0]) < m.dist(&q, &[0.0, 1.0]));
    }

    #[test]
    fn cosine_range_and_zero_norm() {
        let m = Cosine;
        assert!((m.dist(&[1.0, 0.0], &[2.0, 0.0])).abs() < 1e-6);
        assert!((m.dist(&[1.0, 0.0], &[0.0, 5.0]) - 1.0).abs() < 1e-6);
        assert!((m.dist(&[1.0, 0.0], &[-3.0, 0.0]) - 2.0).abs() < 1e-6);
        assert_eq!(m.dist(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }
}
