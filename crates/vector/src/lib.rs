//! Vector storage and distance primitives for PathWeaver.
//!
//! This crate is the numeric substrate of the reproduction:
//!
//! - [`matrix`]: [`VectorSet`], a dense row-major `f32` matrix holding a
//!   dataset (or shard) of `d`-dimensional points.
//! - [`metric`]: the [`Metric`] trait plus L2 / inner-product / cosine
//!   implementations.
//! - [`distance`]: squared-L2 and batched distance entry points — the
//!   operation the paper shows dominates >80–95 % of search time (Fig 2).
//! - [`simd`]: the runtime-dispatched kernel layer behind [`distance`] and
//!   [`signbit`] — AVX2/SSE2 on x86_64, NEON on aarch64, 4-accumulator
//!   scalar fallback — bitwise identical across levels and overridable via
//!   `PATHWEAVER_SIMD=scalar|sse2|avx2|neon`.
//! - [`signbit`]: 1-bit direction codes packed into `u32` words, the
//!   substrate of direction-guided selection (paper §3.3): the sign of each
//!   coordinate of `dst - src` approximates the direction of the edge, and
//!   matching bit counts against the query direction rank neighbors without
//!   reading their full vectors.
//! - [`norm`]: vector norms and normalization.
//! - [`quantize`]: per-dimension scalar `i8` quantization — the traversal
//!   compression tier: 64-byte-aligned code rows, SIMD-dispatched integer
//!   code-space distances, exact re-rank handled by the search kernel.

#![deny(clippy::cast_possible_truncation)]

pub mod distance;
pub mod matrix;
pub mod metric;
pub mod norm;
pub mod quantize;
pub mod signbit;
pub mod simd;

pub use distance::{batch_l2_squared, batch_l2_squared_mq, dot, l2, l2_squared, l2_squared_rows};
pub use matrix::VectorSet;
pub use metric::{Cosine, InnerProduct, Metric, SquaredL2};
pub use quantize::QuantizedSet;
pub use signbit::{hamming_matches, sign_code, sign_code_words, SignCodeBuf};
pub use simd::{active_simd_level, kernels_for, set_simd_level, Kernels, SimdLevel};
