//! Cross-level bitwise-identity property tests for the SIMD kernel layer.
//!
//! The dispatch contract (see `pathweaver_vector::simd`) is that every
//! enabled SIMD level executes the exact FP operation sequence of the scalar
//! kernels, so distances, dot products, and sign codes are **bitwise
//! identical** across levels — on every dimension (including 0 and the awkward
//! primes), on unaligned subslices, and on padded-aligned storage.

use pathweaver_vector::{
    batch_l2_squared, kernels_for, l2_squared, sign_code_words, QuantizedSet, SimdLevel, VectorSet,
};
use proptest::prelude::*;

/// The dimensions the issue calls out, plus block-boundary neighbors.
const DIMS: &[usize] = &[0, 1, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 64, 96, 100, 128, 960];

fn deterministic_vec(len: usize, salt: u32) -> Vec<f32> {
    // Cheap splitmix-style generator: full-range mantissas, mixed signs, a
    // few denormal-ish magnitudes — values where reassociation would show.
    let mut state = 0x9e37_79b9u32 ^ salt;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(0x85eb_ca6b).wrapping_add(0xc2b2_ae35);
            ((state >> 8) as f32 / (1 << 24) as f32 - 0.5) * 200.0
        })
        .collect()
}

#[test]
fn all_levels_bitwise_identical_on_issue_dims() {
    let scalar = kernels_for(SimdLevel::Scalar).unwrap();
    for level in SimdLevel::available() {
        let k = kernels_for(level).unwrap();
        for &dim in DIMS {
            let a = deterministic_vec(dim, 1);
            let b = deterministic_vec(dim, 2);
            assert_eq!(
                k.l2_squared(&a, &b).to_bits(),
                scalar.l2_squared(&a, &b).to_bits(),
                "l2_squared {} dim={dim}",
                level.name()
            );
            assert_eq!(
                k.dot(&a, &b).to_bits(),
                scalar.dot(&a, &b).to_bits(),
                "dot {} dim={dim}",
                level.name()
            );
            let rows: Vec<Vec<f32>> = (0..4).map(|i| deterministic_vec(dim, 10 + i)).collect();
            let r = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
            let got = k.l2_squared_x4(r, &a);
            let want = scalar.l2_squared_x4(r, &a);
            for j in 0..4 {
                assert_eq!(
                    got[j].to_bits(),
                    want[j].to_bits(),
                    "l2_squared_x4 {} dim={dim} row={j}",
                    level.name()
                );
            }
            let words = sign_code_words(dim).max(1);
            let (mut cg, mut cw) = (vec![0u32; words], vec![0u32; words]);
            k.sign_code(&a, &b, &mut cg);
            scalar.sign_code(&a, &b, &mut cw);
            assert_eq!(cg, cw, "sign_code {} dim={dim}", level.name());
        }
    }
}

#[test]
fn unaligned_subslices_are_bitwise_identical() {
    // Slicing at every offset 0..8 guarantees the kernels see row pointers
    // at all possible (mis)alignments relative to 16/32-byte boundaries.
    let scalar = kernels_for(SimdLevel::Scalar).unwrap();
    let a = deterministic_vec(200, 21);
    let b = deterministic_vec(200, 22);
    for level in SimdLevel::available() {
        let k = kernels_for(level).unwrap();
        for off in 0..8usize {
            for dim in [0usize, 1, 7, 33, 100, 129] {
                let (xa, xb) = (&a[off..off + dim], &b[off..off + dim]);
                assert_eq!(
                    k.l2_squared(xa, xb).to_bits(),
                    scalar.l2_squared(xa, xb).to_bits(),
                    "{} off={off} dim={dim}",
                    level.name()
                );
                assert_eq!(
                    k.dot(xa, xb).to_bits(),
                    scalar.dot(xa, xb).to_bits(),
                    "dot {} off={off} dim={dim}",
                    level.name()
                );
            }
        }
    }
}

#[test]
fn nan_sign_codes_match_scalar_on_every_level() {
    // The scalar `t > f` is false on NaN; the SIMD ordered compares must
    // agree exactly, on every lane position.
    let scalar = kernels_for(SimdLevel::Scalar).unwrap();
    for level in SimdLevel::available() {
        let k = kernels_for(level).unwrap();
        for dim in [9usize, 16, 33] {
            for nan_pos in 0..dim {
                let from = deterministic_vec(dim, 31);
                let mut to = deterministic_vec(dim, 32);
                to[nan_pos] = f32::NAN;
                let words = sign_code_words(dim);
                let (mut cg, mut cw) = (vec![0u32; words], vec![0u32; words]);
                k.sign_code(&from, &to, &mut cg);
                scalar.sign_code(&from, &to, &mut cw);
                assert_eq!(cg, cw, "{} dim={dim} nan at {nan_pos}", level.name());
            }
        }
    }
}

fn deterministic_codes(len: usize, salt: u32) -> Vec<i8> {
    let mut state = 0x6c62_272e_u32 ^ salt;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(0x85eb_ca6b).wrapping_add(0xc2b2_ae35);
            i8::try_from(i32::try_from(state >> 24).unwrap() - 128).unwrap()
        })
        .collect()
}

#[test]
fn code_distance_bitwise_identical_on_issue_dims() {
    // The quantized-traversal kernel is integer, so identity is exact by
    // construction — this pins it against regressions (e.g. a future SIMD
    // path switching to saturating arithmetic).
    let scalar = kernels_for(SimdLevel::Scalar).unwrap();
    for level in SimdLevel::available() {
        let k = kernels_for(level).unwrap();
        for &dim in DIMS {
            let a = deterministic_codes(dim, 3);
            let b = deterministic_codes(dim, 4);
            assert_eq!(
                k.code_l2_squared(&a, &b),
                scalar.code_l2_squared(&a, &b),
                "code_l2_squared {} dim={dim}",
                level.name()
            );
        }
    }
}

#[test]
fn code_distance_unaligned_subslices_identical() {
    let scalar = kernels_for(SimdLevel::Scalar).unwrap();
    let a = deterministic_codes(400, 5);
    let b = deterministic_codes(400, 6);
    for level in SimdLevel::available() {
        let k = kernels_for(level).unwrap();
        for off in 0..8usize {
            for len in [0usize, 1, 15, 16, 17, 33, 64, 100, 129, 300] {
                let (xa, xb) = (&a[off..off + len], &b[off..off + len]);
                assert_eq!(
                    k.code_l2_squared(xa, xb),
                    scalar.code_l2_squared(xa, xb),
                    "{} off={off} len={len}",
                    level.name()
                );
            }
        }
    }
}

proptest! {
    #[test]
    fn prop_code_distance_matches_naive_on_all_levels(
        pairs in proptest::collection::vec((-127i32..128, -127i32..128), 0..400),
    ) {
        let (a, b): (Vec<i8>, Vec<i8>) = pairs
            .into_iter()
            .map(|(x, y)| (i8::try_from(x).unwrap(), i8::try_from(y).unwrap()))
            .unzip();
        let want: u32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                let d = i32::from(x) - i32::from(y);
                u32::try_from(d * d).unwrap()
            })
            .sum();
        for level in SimdLevel::available() {
            let k = kernels_for(level).unwrap();
            prop_assert_eq!(k.code_l2_squared(&a, &b), want, "{} len={}", level.name(), a.len());
        }
    }

    #[test]
    fn prop_per_dim_quantization_error_bounded(
        dim in 1usize..80,
        rows in 1usize..16,
        lo in -1e4f32..1e4,
        span in 0.0f32..1e4,
        seed in 0u32..1000,
    ) {
        // Adversarial ranges: shifting by `lo` covers negative-only dims,
        // `span == 0` degenerates to constant dims. The per-element
        // reconstruction error must stay within scale_d / 2.
        let raw = deterministic_vec(dim * rows, seed);
        let shifted: Vec<f32> = raw.iter().map(|x| lo + (x / 200.0 + 0.5) * span).collect();
        let set = VectorSet::from_flat(dim, shifted);
        let q = QuantizedSet::quantize(&set);
        let back = q.dequantize();
        for i in 0..set.len() {
            for (d, (a, b)) in set.row(i).iter().zip(back.row(i)).enumerate() {
                // scale/2 is the exact-arithmetic bound; the rest absorbs the
                // f32 rounding of encode/decode, which scales with the value
                // magnitude (ulp of the offset), not with the scale.
                let fp_slack = (q.offsets()[d].abs() + q.scales()[d] * 254.0) * 1e-6 + 1e-6;
                let bound = q.scales()[d] * 0.5 + fp_slack;
                prop_assert!(
                    (a - b).abs() <= bound,
                    "row {} dim {}: {} vs {} (scale {})", i, d, a, b, q.scales()[d]
                );
            }
        }
    }

    #[test]
    fn prop_quantized_batch_identical_across_levels(
        dim in 1usize..100,
        rows in 1usize..12,
        seed in 0u32..1000,
    ) {
        let set = VectorSet::from_flat(dim, deterministic_vec(dim * rows, seed));
        let q = QuantizedSet::quantize(&set);
        let qc = q.encode(&deterministic_vec(dim, seed ^ 0x55aa));
        let idx: Vec<u32> = (0..u32::try_from(rows).unwrap()).rev().collect();
        let scalar_out = {
            let prev = pathweaver_vector::active_simd_level();
            assert!(pathweaver_vector::set_simd_level(SimdLevel::Scalar));
            let mut out = vec![0.0f32; rows];
            q.batch_code_l2_squared(&idx, &qc, &mut out);
            assert!(pathweaver_vector::set_simd_level(prev));
            out
        };
        for level in SimdLevel::available() {
            let prev = pathweaver_vector::active_simd_level();
            assert!(pathweaver_vector::set_simd_level(level));
            let mut out = vec![0.0f32; rows];
            q.batch_code_l2_squared(&idx, &qc, &mut out);
            assert!(pathweaver_vector::set_simd_level(prev));
            for i in 0..rows {
                prop_assert_eq!(
                    out[i].to_bits(), scalar_out[i].to_bits(),
                    "{} dim={} row={}", level.name(), dim, i
                );
            }
        }
    }

    #[test]
    fn prop_all_levels_match_scalar(
        pairs in proptest::collection::vec((-1e6f32..1e6, -1e6f32..1e6), 0..300),
    ) {
        let (a, b): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let scalar = kernels_for(SimdLevel::Scalar).unwrap();
        for level in SimdLevel::available() {
            let k = kernels_for(level).unwrap();
            prop_assert_eq!(
                k.l2_squared(&a, &b).to_bits(),
                scalar.l2_squared(&a, &b).to_bits(),
                "l2 {} dim={}", level.name(), a.len()
            );
            prop_assert_eq!(
                k.dot(&a, &b).to_bits(),
                scalar.dot(&a, &b).to_bits(),
                "dot {} dim={}", level.name(), a.len()
            );
        }
    }

    #[test]
    fn prop_padded_aligned_storage_identical_to_compact(
        dim in 1usize..130,
        rows in 1usize..12,
        seed in 0u32..1000,
    ) {
        let flat = deterministic_vec(dim * rows, seed);
        let compact = VectorSet::from_flat(dim, flat.clone());
        let aligned = VectorSet::from_flat_aligned(dim, flat);
        let query = deterministic_vec(dim, seed ^ 0xffff);
        let idx: Vec<u32> = (0..rows as u32).rev().collect();
        for level in SimdLevel::available() {
            let k = kernels_for(level).unwrap();
            let (mut out_c, mut out_a) = (vec![0.0f32; rows], vec![0.0f32; rows]);
            k.batch_l2_squared(&compact, &idx, &query, &mut out_c);
            k.batch_l2_squared(&aligned, &idx, &query, &mut out_a);
            for i in 0..rows {
                prop_assert_eq!(
                    out_c[i].to_bits(), out_a[i].to_bits(),
                    "{} dim={} row={}", level.name(), dim, i
                );
            }
        }
    }

    #[test]
    fn prop_dispatched_batch_matches_per_row_scalar(
        dim in 1usize..100,
        n in 0usize..20,
        seed in 0u32..1000,
    ) {
        // Whatever level the environment dispatched: the public batched entry
        // point must be bitwise equal to per-row l2_squared calls.
        let set = VectorSet::from_flat(dim, deterministic_vec(dim * 20, seed));
        let query = deterministic_vec(dim, seed ^ 0xabcd);
        let rows: Vec<u32> = (0..n as u32).map(|i| (i * 7) % 20).collect();
        let mut out = vec![0.0f32; n];
        batch_l2_squared(&set, &rows, &query, &mut out);
        for (i, &r) in rows.iter().enumerate() {
            prop_assert_eq!(out[i].to_bits(), l2_squared(set.row(r as usize), &query).to_bits());
        }
    }
}
