//! Human-readable formatting helpers for experiment reports.

/// Formats a count with SI-style suffixes (`1.2K`, `3.4M`, `5.6G`).
pub fn si_count(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Formats a byte count with binary suffixes.
pub fn bytes(v: f64) -> String {
    let a = v.abs();
    if a >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", v / (1024.0 * 1024.0 * 1024.0))
    } else if a >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", v / (1024.0 * 1024.0))
    } else if a >= 1024.0 {
        format!("{:.2} KiB", v / 1024.0)
    } else {
        format!("{v:.0} B")
    }
}

/// Formats a duration in seconds with an adaptive unit (s / ms / µs / ns).
pub fn seconds(v: f64) -> String {
    let a = v.abs();
    if a >= 1.0 {
        format!("{v:.3} s")
    } else if a >= 1e-3 {
        format!("{:.3} ms", v * 1e3)
    } else if a >= 1e-6 {
        format!("{:.3} µs", v * 1e6)
    } else {
        format!("{:.1} ns", v * 1e9)
    }
}

/// Renders a simple fixed-width text table with a header row.
///
/// Column widths adapt to content; used by the `reproduce` harness to print
/// the paper's tables.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_count_suffixes() {
        assert_eq!(si_count(950.0), "950");
        assert_eq!(si_count(1_200.0), "1.20K");
        assert_eq!(si_count(3_400_000.0), "3.40M");
        assert_eq!(si_count(5.6e9), "5.60G");
    }

    #[test]
    fn bytes_suffixes() {
        assert_eq!(bytes(512.0), "512 B");
        assert_eq!(bytes(2048.0), "2.00 KiB");
        assert_eq!(bytes(3.0 * 1024.0 * 1024.0), "3.00 MiB");
    }

    #[test]
    fn seconds_units() {
        assert_eq!(seconds(1.5), "1.500 s");
        assert_eq!(seconds(0.0025), "2.500 ms");
        assert_eq!(seconds(3.5e-6), "3.500 µs");
        assert_eq!(seconds(7e-9), "7.0 ns");
    }

    #[test]
    fn table_alignment() {
        let t = text_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
    }
}
