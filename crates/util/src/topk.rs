//! Bounded top-k selection by smallest key.
//!
//! Used by brute-force ground truth (keep the k nearest over a scan) and by
//! the host-side reduction that merges per-GPU candidate lists (paper §3.1.2:
//! `N × k` candidates reduced on the CPU to the final top-k).

/// A bounded collection keeping the `k` items with the smallest `f32` keys.
///
/// Implemented as a binary max-heap over `(key, payload)` so the current
/// worst element is at the root and `push` is `O(log k)`. Ties on the key are
/// broken by payload order (smaller payload wins) so results are
/// deterministic across thread schedules.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Max-heap: heap[0] is the current worst (largest key).
    heap: Vec<(f32, u64)>,
}

impl TopK {
    /// Creates an empty selector for the `k` smallest keys.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k, heap: Vec::with_capacity(k) }
    }

    /// Returns the configured capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns the number of items currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no item has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns the current threshold: the largest key that would still be
    /// kept, or `f32::INFINITY` while the selector is not yet full.
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap[0].0
        }
    }

    /// Offers `(key, payload)`; keeps it only if it is among the k smallest
    /// seen so far. Returns `true` if the item was kept.
    pub fn push(&mut self, key: f32, payload: u64) {
        if self.heap.len() < self.k {
            self.heap.push((key, payload));
            self.sift_up(self.heap.len() - 1);
        } else if Self::less(&(key, payload), &self.heap[0]) {
            self.heap[0] = (key, payload);
            self.sift_down(0);
        }
    }

    /// Consumes the selector and returns the kept items sorted ascending by
    /// key (ties broken by payload).
    pub fn into_sorted(mut self) -> Vec<(f32, u64)> {
        self.heap.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
        });
        self.heap
    }

    /// Ordering used by the max-heap: `a` outranks `b` ("is better") when its
    /// key is smaller, with payload as the tie-break.
    fn less(a: &(f32, u64), b: &(f32, u64)) -> bool {
        match a.0.partial_cmp(&b.0) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => a.1 < b.1,
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            // Max-heap: the worse (greater) element must be above.
            if Self::less(&self.heap[parent], &self.heap[i]) {
                self.heap.swap(parent, i);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < n && Self::less(&self.heap[largest], &self.heap[l]) {
                largest = l;
            }
            if r < n && Self::less(&self.heap[largest], &self.heap[r]) {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

/// Merges several already-sorted `(key, payload)` lists into the global top-k,
/// dropping duplicate payloads (keeping the smallest key for each).
///
/// This is the host-side reduction of paper §3.1.2: each GPU contributes its
/// local top-k and the CPU selects the final top-k.
pub fn merge_topk(lists: &[Vec<(f32, u64)>], k: usize) -> Vec<(f32, u64)> {
    // BTreeMap, not HashMap: ties between equal keys resolve by payload-id
    // insertion order below, so the dedup map must iterate deterministically
    // for the merged top-k to be identical across runs (pwlint D002).
    let mut best: std::collections::BTreeMap<u64, f32> = std::collections::BTreeMap::new();
    for list in lists {
        for &(key, payload) in list {
            best.entry(payload)
                .and_modify(|cur| {
                    if key < *cur {
                        *cur = key;
                    }
                })
                .or_insert(key);
        }
    }
    let mut top = TopK::new(k.max(1));
    for (payload, key) in best {
        top.push(key, payload);
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_smallest() {
        let mut t = TopK::new(3);
        for (i, key) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            t.push(*key, i as u64);
        }
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|x| x.0).collect::<Vec<_>>(), vec![1.0, 2.0, 3.0]);
        assert_eq!(out.iter().map(|x| x.1).collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    fn threshold_tracks_worst_kept() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(10.0, 0);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(5.0, 1);
        assert_eq!(t.threshold(), 10.0);
        t.push(1.0, 2);
        assert_eq!(t.threshold(), 5.0);
    }

    #[test]
    fn underfilled_returns_all() {
        let mut t = TopK::new(10);
        t.push(2.0, 0);
        t.push(1.0, 1);
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (1.0, 1));
    }

    #[test]
    fn ties_break_by_payload() {
        let mut t = TopK::new(2);
        t.push(1.0, 9);
        t.push(1.0, 3);
        t.push(1.0, 7);
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|x| x.1).collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn merge_dedups_and_selects() {
        let a = vec![(1.0, 10), (3.0, 11)];
        let b = vec![(2.0, 10), (0.5, 12)];
        let out = merge_topk(&[a, b], 2);
        assert_eq!(out, vec![(0.5, 12), (1.0, 10)]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = TopK::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn matches_naive_sort(keys in proptest::collection::vec(0.0f32..1000.0, 0..200), k in 1usize..20) {
            let mut t = TopK::new(k);
            for (i, &key) in keys.iter().enumerate() {
                t.push(key, i as u64);
            }
            let got = t.into_sorted();

            let mut pairs: Vec<(f32, u64)> =
                keys.iter().enumerate().map(|(i, &key)| (key, i as u64)).collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            pairs.truncate(k);
            prop_assert_eq!(got, pairs);
        }

        #[test]
        fn threshold_is_max_kept(keys in proptest::collection::vec(0.0f32..100.0, 1..100)) {
            let mut t = TopK::new(5);
            for (i, &key) in keys.iter().enumerate() {
                t.push(key, i as u64);
            }
            let thr = t.threshold();
            let kept = t.into_sorted();
            if kept.len() == 5 {
                prop_assert_eq!(thr, kept.last().unwrap().0);
            } else {
                prop_assert_eq!(thr, f32::INFINITY);
            }
        }
    }
}
