//! 64-byte-aligned byte buffers with typed word views.
//!
//! The durable index store (`pathweaver_core::store::segment`) lays every
//! array section of a segment file out at a 64-byte-aligned file offset so
//! the whole file can be pulled in with **one read into one aligned buffer**
//! and each section viewed directly as `&[f32]` / `&[u32]` / `&[u64]` — no
//! per-record framing, no per-element decode loop. This module is the one
//! audited home of the pointer casts that implement those views (registered
//! in `lint.toml` under `allow.raw-pointer`, next to the worker pool's job
//! slots and the SIMD kernels).
//!
//! The typed views assume the file bytes are little-endian, which matches
//! every tier-1 target (x86-64, aarch64). On a big-endian host the views
//! fall back to a checked per-word decode so the format stays portable.

/// The allocation unit: one cache line of bytes, 64-byte aligned. A
/// `Vec<Line>` is therefore a gap-free byte buffer whose base sits on a
/// 64-byte boundary (size == align == 64, so there is no stride padding).
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy)]
struct Line([u8; 64]);

/// Bytes per allocation line — the buffer's base alignment and the file
/// layout's section-offset granule.
pub const ALIGN: usize = 64;

/// A heap byte buffer whose base address is 64-byte aligned.
///
/// Sections placed at offsets that are multiples of [`ALIGN`] can be viewed
/// as typed word slices without copying ([`AlignedBytes::f32s`],
/// [`AlignedBytes::u32s`], [`AlignedBytes::u64s`]).
#[derive(Debug, Clone)]
pub struct AlignedBytes {
    lines: Vec<Line>,
    len: usize,
}

impl AlignedBytes {
    /// Allocates a zeroed buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        Self { lines: vec![Line([0; ALIGN]); len.div_ceil(ALIGN)], len }
    }

    /// Copies `bytes` into a fresh aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut buf = Self::zeroed(bytes.len());
        buf.as_mut_slice().copy_from_slice(bytes);
        buf
    }

    /// Reads `r` to its end into a fresh aligned buffer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying IO error.
    pub fn read_to_end(mut r: impl std::io::Read) -> std::io::Result<Self> {
        // Read::read_to_end targets Vec<u8>; one bulk copy moves the bytes
        // onto the aligned allocation. (The copy, not the alignment, is what
        // an mmap-backed variant would remove.)
        let mut raw = Vec::new();
        r.read_to_end(&mut raw)?;
        Ok(Self::from_bytes(&raw))
    }

    /// Number of logical bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer as plain bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `Line` is `repr(C, align(64))` wrapping a single
        // `[u8; 64]` field with size == align == 64, so a `Line` slice is a
        // contiguous, fully initialized byte buffer of 64x its length;
        // `self.len <= lines.len() * 64` by construction in `zeroed`.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr().cast::<u8>(), self.len) }
    }

    /// The buffer as mutable bytes.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as in `as_slice`; the exclusive borrow of `self` makes the
        // byte view unique, and `u8` has no validity invariants to break.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr().cast::<u8>(), self.len) }
    }

    /// Views `count` little-endian `f32`s at byte `offset`.
    ///
    /// Returns `None` when the range is out of bounds or `offset` is not
    /// 4-byte aligned (section offsets in the store are 64-byte aligned, so
    /// this never fires on well-formed files).
    pub fn f32s(&self, offset: usize, count: usize) -> Option<TypedView<'_, f32>> {
        self.view(offset, count)
    }

    /// Views `count` little-endian `u32`s at byte `offset` (alignment and
    /// bounds checked as in [`AlignedBytes::f32s`]).
    pub fn u32s(&self, offset: usize, count: usize) -> Option<TypedView<'_, u32>> {
        self.view(offset, count)
    }

    /// Views `count` little-endian `u64`s at byte `offset` (alignment and
    /// bounds checked as in [`AlignedBytes::f32s`]).
    pub fn u64s(&self, offset: usize, count: usize) -> Option<TypedView<'_, u64>> {
        self.view(offset, count)
    }

    fn view<T: LeWord>(&self, offset: usize, count: usize) -> Option<TypedView<'_, T>> {
        let size = std::mem::size_of::<T>();
        let bytes = count.checked_mul(size)?;
        let end = offset.checked_add(bytes)?;
        if end > self.len || !offset.is_multiple_of(size) {
            return None;
        }
        let raw = &self.as_slice()[offset..end];
        #[cfg(target_endian = "little")]
        {
            // SAFETY: `raw` starts at `base + offset` where `base` is
            // 64-byte aligned and `offset` is a multiple of `size_of::<T>`,
            // so the pointer is aligned for `T`; the range is in bounds
            // (checked above), fully initialized, and `T` is one of
            // f32/u32/u64 — plain-old-data types for which every bit
            // pattern is valid. The borrow keeps the buffer alive and
            // immutable for the view's lifetime.
            let words = unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<T>(), count) };
            Some(TypedView::Borrowed(words))
        }
        #[cfg(target_endian = "big")]
        {
            let mut words = Vec::with_capacity(count);
            for chunk in raw.chunks_exact(size) {
                words.push(T::from_le_chunk(chunk));
            }
            Some(TypedView::Owned(words))
        }
    }
}

/// A typed word view over an [`AlignedBytes`] section: borrowed (zero-copy)
/// on little-endian hosts, owned (decoded) on big-endian ones.
#[derive(Debug)]
pub enum TypedView<'a, T> {
    /// Direct reinterpretation of the aligned file bytes.
    Borrowed(&'a [T]),
    /// Per-word decoded copy (big-endian fallback).
    Owned(Vec<T>),
}

impl<T> std::ops::Deref for TypedView<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        match self {
            Self::Borrowed(s) => s,
            Self::Owned(v) => v,
        }
    }
}

/// Fixed-width words the store reads and writes in little-endian order.
pub trait LeWord: Copy {
    /// Decodes one word from exactly `size_of::<Self>()` little-endian bytes.
    fn from_le_chunk(chunk: &[u8]) -> Self;
    /// Appends the word's little-endian bytes to `out`.
    fn put_le(self, out: &mut Vec<u8>);
}

macro_rules! impl_le_word {
    ($($t:ty),*) => {$(
        impl LeWord for $t {
            fn from_le_chunk(chunk: &[u8]) -> Self {
                <$t>::from_le_bytes(chunk.try_into().expect("exact chunk"))
            }
            fn put_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
    )*};
}

impl_le_word!(f32, u32, u64);

/// Appends a word slice to `out` in little-endian order and returns the
/// byte count written (the write-side twin of the typed views).
pub fn put_le_words<T: LeWord>(out: &mut Vec<u8>, words: &[T]) -> usize {
    let before = out.len();
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `T: LeWord` is one of f32/u32/u64 — plain-old-data with no
        // padding — so the slice's backing bytes are fully initialized and
        // on a little-endian host already carry the on-disk byte order.
        let bytes = unsafe {
            std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), std::mem::size_of_val(words))
        };
        out.extend_from_slice(bytes);
    }
    #[cfg(target_endian = "big")]
    {
        for &w in words {
            w.put_le(out);
        }
    }
    out.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_64_byte_aligned() {
        for len in [0usize, 1, 63, 64, 65, 4096] {
            let buf = AlignedBytes::zeroed(len);
            assert_eq!(buf.len(), len);
            if len > 0 {
                assert_eq!(buf.as_slice().as_ptr() as usize % ALIGN, 0);
            }
        }
    }

    #[test]
    fn typed_views_roundtrip() {
        let f: Vec<f32> = (0..16).map(|i| i as f32 * 0.5 - 3.0).collect();
        let u: Vec<u32> = (0..16u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let w: Vec<u64> = (0..8).map(|i| u64::MAX / (i + 1)).collect();
        let mut bytes = Vec::new();
        put_le_words(&mut bytes, &f);
        put_le_words(&mut bytes, &u);
        put_le_words(&mut bytes, &w);
        let buf = AlignedBytes::from_bytes(&bytes);
        assert_eq!(&*buf.f32s(0, 16).unwrap(), &f[..]);
        assert_eq!(&*buf.u32s(64, 16).unwrap(), &u[..]);
        assert_eq!(&*buf.u64s(128, 8).unwrap(), &w[..]);
    }

    #[test]
    fn out_of_bounds_and_misaligned_views_are_none() {
        let buf = AlignedBytes::zeroed(64);
        assert!(buf.u32s(0, 17).is_none(), "past the end");
        assert!(buf.u32s(2, 1).is_none(), "offset not word-aligned");
        assert!(buf.u64s(60, 1).is_none(), "straddles the end");
        assert!(buf.u32s(usize::MAX, 2).is_none(), "offset overflow");
        assert!(buf.u32s(0, usize::MAX).is_none(), "count overflow");
        assert!(buf.f32s(64, 0).is_some(), "empty view at the end is fine");
    }

    #[test]
    fn read_to_end_copies_everything() {
        let data: Vec<u8> = (0..777u32).map(|i| (i % 251) as u8).collect();
        let buf = AlignedBytes::read_to_end(&data[..]).unwrap();
        assert_eq!(buf.as_slice(), &data[..]);
    }

    #[test]
    fn mutation_shows_through_views() {
        let mut buf = AlignedBytes::zeroed(8);
        buf.as_mut_slice()[..4].copy_from_slice(&7u32.to_le_bytes());
        assert_eq!(&*buf.u32s(0, 2).unwrap(), &[7, 0]);
    }
}
