//! Deterministic RNG helpers.
//!
//! Every stochastic component in the reproduction (dataset synthesis, shard
//! assignment, random search entry points, ghost-node sampling) derives its
//! randomness from an explicit `u64` seed so experiments replay exactly.
//! These helpers centralize seed derivation so that independent components
//! seeded from a common experiment seed do not accidentally correlate.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds a [`SmallRng`] from a `u64` seed.
pub fn small_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a domain label.
///
/// Uses the SplitMix64 finalizer over the XOR of the parent seed and a hash
/// of the label, which is enough mixing to decorrelate sibling streams.
pub fn seed_from_parts(parent: u64, label: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(parent ^ h ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One round of the SplitMix64 output function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stream of decorrelated child seeds derived from one parent seed.
///
/// Handy when a loop spawns many seeded sub-tasks (one per shard, one per
/// query batch, ...) and each needs an independent stream.
#[derive(Debug, Clone)]
pub struct SeedStream {
    parent: u64,
    label: &'static str,
    next: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `parent` within the namespace `label`.
    pub fn new(parent: u64, label: &'static str) -> Self {
        Self { parent, label, next: 0 }
    }

    /// Returns the next child seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = seed_from_parts(self.parent, self.label, self.next);
        self.next += 1;
        s
    }

    /// Returns the `i`-th child seed without advancing the stream.
    pub fn seed_at(&self, i: u64) -> u64 {
        seed_from_parts(self.parent, self.label, i)
    }

    /// Returns the next child RNG.
    pub fn next_rng(&mut self) -> SmallRng {
        small_rng(self.next_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_replays() {
        let mut a = small_rng(42);
        let mut b = small_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn labels_decorrelate() {
        assert_ne!(seed_from_parts(1, "shard", 0), seed_from_parts(1, "ghost", 0));
        assert_ne!(seed_from_parts(1, "shard", 0), seed_from_parts(1, "shard", 1));
        assert_ne!(seed_from_parts(1, "shard", 0), seed_from_parts(2, "shard", 0));
    }

    #[test]
    fn stream_matches_seed_at() {
        let mut s = SeedStream::new(7, "test");
        let peek0 = s.seed_at(0);
        let peek1 = s.seed_at(1);
        assert_eq!(s.next_seed(), peek0);
        assert_eq!(s.next_seed(), peek1);
    }

    #[test]
    fn stream_seeds_are_distinct() {
        let mut s = SeedStream::new(123, "distinct");
        let seeds: Vec<u64> = (0..64).map(|_| s.next_seed()).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }
}
