//! Persistent fork-join worker pool.
//!
//! The workspace needs simple fork-join parallelism (graph construction,
//! brute-force ground truth, per-shard preprocessing, batch search) but the
//! approved dependency set contains no thread-pool crate. Earlier revisions
//! spawned fresh scoped threads on every call; at batch-search granularity the
//! per-call OS thread spawn dominated the useful work, so the helpers now
//! dispatch onto a lazily-initialized global pool of persistent workers.
//!
//! Design notes (see also DESIGN.md, "Threading model"):
//!
//! - **Lazy global pool.** No threads exist until the first parallel call
//!   that actually wants parallelism. The pool grows on demand up to the
//!   per-call thread budget and workers then idle on a condition variable.
//! - **Scoped borrows.** [`parallel_for`]'s closure may borrow from the
//!   caller's stack. The job descriptor lives in the caller's frame; its
//!   address is type-erased, handed to workers, and the caller blocks until
//!   every handed-out reference has been returned, which bounds all worker
//!   access within the caller's lifetime.
//! - **Caller participates.** The calling thread drains blocks alongside the
//!   workers, so a pool of `n - 1` workers saturates `n` threads and a call
//!   never sits idle waiting for a busy pool.
//! - **Dynamic block scheduling.** Indices are handed out in contiguous
//!   blocks from a shared atomic cursor (~8 blocks per thread), so uneven
//!   per-index cost (e.g. beam searches converging at different iteration
//!   counts) still balances.
//! - **Panic propagation.** A panic in the closure — on any thread — is
//!   captured, remaining blocks are abandoned, and the payload is re-thrown
//!   on the calling thread once the job has quiesced. Workers survive
//!   panics; the pool never shrinks.
//! - **Nested calls run serial.** A parallel call from inside a worker
//!   executes inline on that worker. This keeps nesting deadlock-free and
//!   the thread count bounded by the top-level budget.
//! - **`PATHWEAVER_THREADS`.** Read per call: `1` forces fully serial
//!   execution (no pool interaction at all, useful for debugging and for
//!   deterministic wall-clock baselines); larger values cap — and on first
//!   use, size — the worker count.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::{Condvar, Mutex};

/// Returns the number of worker threads to use by default.
///
/// Honours the `PATHWEAVER_THREADS` environment variable when it parses as a
/// positive integer; otherwise falls back to [`std::thread::available_parallelism`].
pub fn available_threads() -> usize {
    if let Ok(v) = std::env::var("PATHWEAVER_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

thread_local! {
    /// Set while a pool worker (or a closure it runs) is on this thread's
    /// stack; nested parallel calls check it and degrade to serial.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A fork-join job descriptor, allocated in the calling thread's frame.
///
/// Workers receive `*const Job` through the pool queue. The pointee stays
/// valid because [`parallel_for`] does not return until `outstanding` — the
/// number of queue entries not yet fully processed — reaches zero.
struct Job {
    /// Next unclaimed index; blocks are claimed with `fetch_add(block)`.
    cursor: AtomicUsize,
    /// One past the last index.
    len: usize,
    /// Indices claimed per cursor bump.
    block: usize,
    /// Type-erased `&dyn Fn(usize)` borrowed from the caller's frame.
    ///
    /// The `'static` here is a lie told to the type system; validity is
    /// enforced by the completion handshake described above.
    body: *const (dyn Fn(usize) + Sync + 'static),
    /// Queue entries handed out and not yet returned by a worker.
    outstanding: AtomicUsize,
    /// Set on first panic; drains abandon remaining blocks when it is set.
    abandoned: AtomicBool,
    /// First panic payload, re-thrown on the calling thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion signal: workers notify when `outstanding` hits zero.
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `Job` is shared by address between the caller and pool workers. All
// mutable state is behind atomics or locks, and `body` points at a `Sync`
// closure, so concurrent shared access is sound. The raw pointer's lifetime
// is upheld by the completion handshake in `parallel_for`.
unsafe impl Send for Job {}
// SAFETY: see the `Send` justification above.
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs blocks until the range — or the job — is exhausted.
    /// Returns the first panic payload caught on this thread, if any.
    fn drain(&self) -> Option<Box<dyn Any + Send>> {
        // SAFETY: the caller of `parallel_for` keeps the closure alive until
        // `outstanding` reaches zero, and this method only runs before the
        // worker's decrement (or on the caller's own stack).
        let body = unsafe { &*self.body };
        while !self.abandoned.load(Ordering::Relaxed) {
            let start = self.cursor.fetch_add(self.block, Ordering::Relaxed);
            if start >= self.len {
                return None;
            }
            let end = (start + self.block).min(self.len);
            for i in start..end {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(i))) {
                    // Relaxed: `abandoned` is a best-effort stop flag — late
                    // readers just claim one extra block; the panic payload
                    // itself is published through the `panic` mutex.
                    self.abandoned.store(true, Ordering::Relaxed);
                    return Some(payload);
                }
            }
        }
        None
    }

    /// Records the first panic payload; later ones are dropped.
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Returns one queue entry; the last return wakes the caller.
    fn finish_entry(&self) {
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_lock.lock();
            self.done_cv.notify_all();
        }
    }
}

/// Queue entry: the address of a caller-owned [`Job`].
struct JobRef(*const Job);

// SAFETY: the pointee is `Sync` and outlives every queue entry (completion
// handshake), so the address may cross threads.
unsafe impl Send for JobRef {}

/// Shared state of the global pool.
struct Pool {
    queue: Mutex<VecDeque<JobRef>>,
    /// Signals workers that the queue may be non-empty.
    work_cv: Condvar,
    /// Workers spawned so far; grows on demand, never shrinks.
    spawned: Mutex<usize>,
}

impl Pool {
    /// Ensures at least `want` workers exist; returns the usable count
    /// (less than `want` only if thread spawning fails).
    fn ensure_workers(&'static self, want: usize) -> usize {
        let mut have = self.spawned.lock();
        while *have < want {
            let name = format!("pathweaver-worker-{}", *have);
            let builder = std::thread::Builder::new().name(name);
            match builder.spawn(move || self.worker_loop()) {
                Ok(_) => *have += 1,
                Err(_) => break,
            }
        }
        (*have).min(want)
    }

    /// The persistent worker body: pop a job, drain it, repeat forever.
    fn worker_loop(&self) {
        IN_WORKER.with(|f| f.set(true));
        loop {
            let job = {
                let mut queue = self.queue.lock();
                loop {
                    if let Some(j) = queue.pop_front() {
                        break j;
                    }
                    self.work_cv.wait(&mut queue);
                }
            };
            // SAFETY: the queue entry guarantees the job is still live; the
            // caller cannot return until `finish_entry` below runs.
            let job = unsafe { &*job.0 };
            if let Some(payload) = job.drain() {
                job.record_panic(payload);
            }
            job.finish_entry();
        }
    }
}

/// Returns the lazily-created global pool.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

/// Runs `body(i)` for every `i in 0..len`, distributing indices over the
/// persistent worker pool.
///
/// Work is handed out in dynamically-sized blocks from a shared atomic
/// cursor, so uneven per-index cost (e.g. beam searches that converge at
/// different iteration counts) still balances. The calling thread processes
/// blocks alongside the workers.
///
/// `body` receives the global index and may borrow from the caller's stack.
/// The call returns after every index has been processed (or, on panic,
/// after remaining blocks are abandoned and the job has quiesced).
///
/// Runs serially — without touching the pool — when `PATHWEAVER_THREADS=1`,
/// when `len < 2`, or when called from inside another parallel call.
///
/// # Panics
///
/// Re-throws the first panic raised by `body` on the calling thread.
pub fn parallel_for<F>(len: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let threads = available_threads().min(len.max(1));
    if threads <= 1 || len < 2 || IN_WORKER.with(|f| f.get()) {
        for i in 0..len {
            body(i);
        }
        return;
    }

    let pool = pool();
    // The caller is one of the `threads`; the pool supplies the rest.
    let helpers = pool.ensure_workers(threads - 1);
    if helpers == 0 {
        for i in 0..len {
            body(i);
        }
        return;
    }

    // ~8 blocks per participating thread balances load without excessive
    // cursor contention.
    let block = (len / ((helpers + 1) * 8)).max(1);
    let body_ref: &(dyn Fn(usize) + Sync) = &body;
    // SAFETY: erasing the borrow's lifetime is sound because this function
    // blocks until `outstanding == 0`, i.e. until no worker can still hold
    // a reference to the job or the closure.
    let body_ptr = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(
            body_ref,
        )
    };
    let job = Job {
        cursor: AtomicUsize::new(0),
        len,
        block,
        body: body_ptr,
        outstanding: AtomicUsize::new(helpers),
        abandoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
    };

    {
        let mut queue = pool.queue.lock();
        for _ in 0..helpers {
            queue.push_back(JobRef(&job));
        }
    }
    pool.work_cv.notify_all();

    // Work the job from this thread too; a panic here is deferred until the
    // workers have quiesced so the job can be dropped safely.
    if let Some(payload) = job.drain() {
        job.record_panic(payload);
    }

    {
        let mut guard = job.done_lock.lock();
        while job.outstanding.load(Ordering::Acquire) > 0 {
            job.done_cv.wait(&mut guard);
        }
    }

    let payload = job.panic.lock().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Maps `f` over `0..len` in parallel and collects the results in index order.
pub fn parallel_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    {
        let slots: Vec<SlotPtr<T>> = out.iter_mut().map(|s| SlotPtr(s as *mut Option<T>)).collect();
        let slots = &slots;
        let f = &f;
        parallel_for(len, move |i| {
            slots[i].write(f(i));
        });
    }
    out.into_iter().map(|s| s.expect("parallel_map slot filled")).collect()
}

/// Raw pointer wrapper so per-index result slots can cross the worker
/// boundary.
struct SlotPtr<T>(*mut Option<T>);

impl<T> SlotPtr<T> {
    /// Writes `value` into the slot.
    fn write(&self, value: T) {
        // SAFETY: `parallel_for` hands each index to exactly one thread, so
        // each slot pointer is written once and never read until the call
        // returns; the target outlives the call.
        unsafe { *self.0 = Some(value) };
    }
}
// SAFETY: Each `SlotPtr` targets a distinct element of a `Vec` that outlives
// the `parallel_for` call, and `parallel_for` guarantees exclusive access per
// index.
unsafe impl<T: Send> Sync for SlotPtr<T> {}
// SAFETY: See `Sync` justification above; the pointer is only dereferenced
// while the owning call is live.
unsafe impl<T: Send> Send for SlotPtr<T> {}

/// Splits `data` into contiguous mutable chunks of `chunk_len` elements and
/// processes them in parallel.
///
/// `body` receives `(chunk_index, chunk)`. The final chunk may be shorter.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let n = chunks.len();
    // Each of the `n` invocations pops exactly one chunk, so all chunks are
    // processed; ownership transfer through the mutex keeps borrows exclusive.
    let work = Mutex::new(chunks);
    parallel_for(n, |_| {
        let item = work.lock().pop();
        if let Some((i, c)) = item {
            body(i, c);
        }
    });
}

/// Spawn-per-call reference implementation retained as a benchmark baseline.
///
/// Semantically identical to [`parallel_for`] but starts fresh scoped
/// threads on every invocation, paying the OS thread spawn cost each time.
/// `crates/bench` compares the two to quantify the persistent pool's
/// dispatch advantage; nothing else should call this.
#[doc(hidden)]
pub fn parallel_for_spawning<F>(len: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let threads = available_threads().min(len.max(1));
    if threads <= 1 || len < 2 {
        for i in 0..len {
            body(i);
        }
        return;
    }
    let block = (len / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                // Relaxed: the cursor is a pure work-claim ticket; the
                // scope's join provides the end-of-job synchronization.
                let start = cursor.fetch_add(block, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + block).min(len);
                for i in start..end {
                    body(i);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that set `PATHWEAVER_THREADS`; without it, parallel
    /// test threads would race on the process-wide environment.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `f` with `PATHWEAVER_THREADS` pinned to `n`, restoring the prior
    /// value afterwards. Pinning above the core count exercises the real
    /// pool machinery even on single-core CI runners.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock();
        let prior = std::env::var("PATHWEAVER_THREADS").ok();
        std::env::set_var("PATHWEAVER_THREADS", n.to_string());
        let result = f();
        match prior {
            Some(v) => std::env::set_var("PATHWEAVER_THREADS", v),
            None => std::env::remove_var("PATHWEAVER_THREADS"),
        }
        result
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        with_threads(4, || {
            let n = 10_000;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            parallel_for(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn parallel_for_uses_pool_workers() {
        with_threads(4, || {
            let caller = std::thread::current().id();
            // One dispatch can (legally) complete entirely on the caller
            // before a parked worker wakes, so no single dispatch is
            // asserted on. Instead the off-thread participation of each
            // dispatch is recorded into a histogram and the aggregate is
            // asserted, with the summary in the failure message — on a
            // loaded runner the distribution shows *how* starved the pool
            // was rather than a bare "never ran".
            let hist = pathweaver_obs::Histogram::new();
            for _ in 0..50 {
                let off_thread = AtomicU64::new(0);
                parallel_for(4_096, |_| {
                    if std::thread::current().id() != caller {
                        off_thread.fetch_add(1, Ordering::Relaxed);
                    } else if off_thread.load(Ordering::Relaxed) == 0 {
                        // The caller yields while it has seen no worker yet,
                        // so it cannot race through the whole range before a
                        // parked worker has any chance to wake.
                        std::thread::yield_now();
                    }
                    std::hint::black_box((0..64).sum::<u64>());
                });
                hist.record(off_thread.load(Ordering::Relaxed));
                if hist.summary().max > 0 {
                    break;
                }
            }
            let s = hist.summary();
            assert!(s.max > 0, "pool workers never ran in {} dispatches: {s:?}", s.count);
        });
    }

    #[test]
    fn parallel_for_empty_is_noop() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_propagates_panic_payload() {
        with_threads(4, || {
            let result = std::panic::catch_unwind(|| {
                parallel_for(1_000, |i| {
                    if i == 381 {
                        panic!("worker failure at {i}");
                    }
                });
            });
            let payload = result.expect_err("panic must propagate to the caller");
            let msg = payload.downcast_ref::<String>().expect("string payload");
            assert!(msg.contains("worker failure at 381"), "{msg}");
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // A panic must not kill pool workers: the next call still completes.
        with_threads(4, || {
            let _ = std::panic::catch_unwind(|| parallel_for(256, |_| panic!("boom")));
            let count = AtomicU64::new(0);
            parallel_for(256, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 256);
        });
    }

    #[test]
    fn nested_parallel_for_completes() {
        // Inner calls degrade to serial on workers (and dispatch normally on
        // the caller); either way every (i, j) cell must be visited without
        // deadlocking the fixed-size pool.
        with_threads(4, || {
            let n = 48;
            let hits: Vec<AtomicU64> = (0..n * n).map(|_| AtomicU64::new(0)).collect();
            parallel_for(n, |i| {
                parallel_for(n, |j| {
                    hits[i * n + j].fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn env_one_forces_serial() {
        // With PATHWEAVER_THREADS=1 every index must run on the calling
        // thread, even when pool workers already exist from earlier calls.
        with_threads(1, || {
            let caller = std::thread::current().id();
            let off_thread = AtomicU64::new(0);
            parallel_for(512, |_| {
                if std::thread::current().id() != caller {
                    off_thread.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(off_thread.load(Ordering::Relaxed), 0);
        });
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(5_000, |i| i * 3);
        assert_eq!(out.len(), 5_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn parallel_map_zero_len() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_chunks_mut_covers_all_elements() {
        let mut data = vec![0u32; 1003];
        parallel_chunks_mut(&mut data, 97, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        // The first chunk is indices 0..97 with chunk id 0 -> value 1.
        assert_eq!(data[0], 1);
        assert_eq!(data[96], 1);
        assert_eq!(data[97], 2);
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn parallel_chunks_mut_rejects_zero_chunk() {
        let mut data = vec![0u8; 4];
        parallel_chunks_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn spawning_baseline_matches() {
        let n = 2_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_spawning(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
