//! Scoped-thread data parallelism.
//!
//! The workspace needs simple fork-join parallelism (graph construction,
//! brute-force ground truth, per-shard preprocessing) but the approved
//! dependency set contains no thread-pool crate. [`std::thread::scope`] is
//! sufficient: all helpers here split an index range into contiguous chunks,
//! run one scoped thread per chunk, and join before returning. Panics in
//! worker closures propagate to the caller.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the number of worker threads to use by default.
///
/// Honours the `PATHWEAVER_THREADS` environment variable when it parses as a
/// positive integer; otherwise falls back to [`std::thread::available_parallelism`].
pub fn available_threads() -> usize {
    if let Ok(v) = std::env::var("PATHWEAVER_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `body(i)` for every `i in 0..len`, distributing indices over scoped
/// threads.
///
/// Work is handed out in dynamically-sized blocks from a shared atomic
/// cursor, so uneven per-index cost (e.g. beam searches that converge at
/// different iteration counts) still balances.
///
/// `body` receives the global index. The call returns after every index has
/// been processed.
pub fn parallel_for<F>(len: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let threads = available_threads().min(len.max(1));
    if threads <= 1 || len < 2 {
        for i in 0..len {
            body(i);
        }
        return;
    }
    // Dynamic block size: aim for ~8 blocks per thread to balance load
    // without excessive cursor contention.
    let block = (len / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let start = cursor.fetch_add(block, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + block).min(len);
                for i in start..end {
                    body(i);
                }
            });
        }
    });
}

/// Maps `f` over `0..len` in parallel and collects the results in index order.
pub fn parallel_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    {
        let slots: Vec<SlotPtr<T>> = out.iter_mut().map(|s| SlotPtr(s as *mut Option<T>)).collect();
        let slots = &slots;
        let f = &f;
        parallel_for(len, move |i| {
            slots[i].write(f(i));
        });
    }
    out.into_iter().map(|s| s.expect("parallel_map slot filled")).collect()
}

/// Raw pointer wrapper so per-index result slots can cross the scoped-thread
/// boundary.
struct SlotPtr<T>(*mut Option<T>);

impl<T> SlotPtr<T> {
    /// Writes `value` into the slot.
    fn write(&self, value: T) {
        // SAFETY: `parallel_for` hands each index to exactly one worker, so
        // each slot pointer is written by a single thread and never read
        // until after the scope joins; the target outlives the scope.
        unsafe { *self.0 = Some(value) };
    }
}
// SAFETY: Each `SlotPtr` targets a distinct element of a `Vec` that outlives
// the thread scope, and `parallel_for` guarantees exclusive access per index.
unsafe impl<T: Send> Sync for SlotPtr<T> {}
// SAFETY: See `Sync` justification above; the pointer is only dereferenced
// inside the owning scope.
unsafe impl<T: Send> Send for SlotPtr<T> {}

/// Splits `data` into contiguous mutable chunks of `chunk_len` elements and
/// processes them in parallel.
///
/// `body` receives `(chunk_index, chunk)`. The final chunk may be shorter.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let n = chunks.len();
    let threads = available_threads().min(n.max(1));
    if threads <= 1 {
        for (i, c) in chunks {
            body(i, c);
        }
        return;
    }
    let work = parking_lot::Mutex::new(chunks);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let item = work.lock().pop();
                match item {
                    Some((i, c)) => body(i, c),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_is_noop() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(5_000, |i| i * 3);
        assert_eq!(out.len(), 5_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn parallel_map_zero_len() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_chunks_mut_covers_all_elements() {
        let mut data = vec![0u32; 1003];
        parallel_chunks_mut(&mut data, 97, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        // The first chunk is indices 0..97 with chunk id 0 -> value 1.
        assert_eq!(data[0], 1);
        assert_eq!(data[96], 1);
        assert_eq!(data[97], 2);
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn parallel_chunks_mut_rejects_zero_chunk() {
        let mut data = vec![0u8; 4];
        parallel_chunks_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
