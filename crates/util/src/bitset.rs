//! Fixed-capacity bitset.
//!
//! Used for exact visited-node tracking in reference search paths and for
//! reachability analysis over proximity graphs. The simulated GPU kernel uses
//! the forgettable hash table from `pathweaver-search` instead; this bitset is
//! the oracle the hash is validated against.

/// A fixed-capacity set of `usize` indices backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl FixedBitSet {
    /// Creates an empty bitset able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// Returns the capacity (exclusive upper bound on stored indices).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity {}", self.capacity);
        let (w, b) = (index / 64, index % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Returns `true` when `index` is present.
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let (w, b) = (index / 64, index % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Removes `index`; returns `true` if it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let (w, b) = (index / 64, index % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Clears all bits, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Grows the capacity to `new_capacity`, preserving set bits.
    ///
    /// Shrinking is not supported; smaller values are ignored.
    pub fn grow(&mut self, new_capacity: usize) {
        if new_capacity > self.capacity {
            self.capacity = new_capacity;
            self.words.resize(new_capacity.div_ceil(64), 0);
        }
    }

    /// Returns the number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing `u64` words (bit `i` of word `i / 64` is index `i`).
    ///
    /// Exposed so the durable store can persist tombstone bitmaps in their
    /// exact in-memory layout.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitset from its persisted words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly `capacity.div_ceil(64)` long or any
    /// bit at or beyond `capacity` is set (a corrupt bitmap must not
    /// silently widen the set).
    pub fn from_words(capacity: usize, words: Vec<u64>) -> Self {
        match Self::try_from_words(capacity, words) {
            Ok(set) => set,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`FixedBitSet::from_words`] for loaders that must turn
    /// shape violations into recoverable errors.
    ///
    /// # Errors
    ///
    /// A description of the violation when the word count disagrees with
    /// `capacity` or a bit at or beyond `capacity` is set.
    pub fn try_from_words(capacity: usize, words: Vec<u64>) -> Result<Self, String> {
        if words.len() != capacity.div_ceil(64) {
            return Err(format!("word count {} mismatches capacity {capacity}", words.len()));
        }
        if !capacity.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (capacity % 64) != 0 {
                    return Err("bit set beyond capacity".into());
                }
            }
        }
        Ok(Self { words, capacity })
    }

    /// Iterates over set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_ascending() {
        let mut s = FixedBitSet::new(200);
        for i in [5usize, 63, 64, 65, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 199]);
    }

    #[test]
    fn clear_resets() {
        let mut s = FixedBitSet::new(100);
        s.insert(42);
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(!s.contains(42));
    }

    #[test]
    fn grow_preserves_bits() {
        let mut s = FixedBitSet::new(10);
        s.insert(9);
        s.grow(200);
        assert_eq!(s.capacity(), 200);
        assert!(s.contains(9));
        assert!(s.insert(199));
        s.grow(50); // Shrink attempts are ignored.
        assert_eq!(s.capacity(), 200);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = FixedBitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = FixedBitSet::new(10);
        s.insert(10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #[test]
        fn behaves_like_hashset(ops in proptest::collection::vec((0usize..256, proptest::bool::ANY), 0..500)) {
            let mut bits = FixedBitSet::new(256);
            let mut set = HashSet::new();
            for (idx, is_insert) in ops {
                if is_insert {
                    prop_assert_eq!(bits.insert(idx), set.insert(idx));
                } else {
                    prop_assert_eq!(bits.remove(idx), set.remove(&idx));
                }
            }
            prop_assert_eq!(bits.count(), set.len());
            let mut expect: Vec<usize> = set.into_iter().collect();
            expect.sort_unstable();
            prop_assert_eq!(bits.iter().collect::<Vec<_>>(), expect);
        }
    }
}
