//! CRC-32 (IEEE 802.3) checksums for the durable store formats.
//!
//! The segment and WAL files checksum every section / record so torn writes
//! and bit rot are detected before any payload is trusted. A slice-by-8
//! table implementation keeps the workspace dependency-free while staying
//! fast enough that checksumming a whole segment on open is a small
//! fraction of the read itself (multiple GB/s in release builds) — the
//! `segment_open` wallclock bench gates this against the legacy loader.

/// The reflected IEEE polynomial used by zlib, PNG and Ethernet.
const POLY: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables, computed once at first use. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k][b]` extends `TABLES[k-1][b]` by
/// one zero byte, letting `update` fold 8 input bytes per iteration.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Incremental CRC-32 state.
///
/// ```
/// let mut h = pathweaver_util::Crc32::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finish(), pathweaver_util::crc32(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = tables();
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4-byte chunk")) ^ c;
            let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4-byte chunk"));
            c = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Returns the final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib crc32 implementation.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let data = vec![0xA5u8; 257];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
