//! Shared utilities for the PathWeaver workspace.
//!
//! This crate collects the small, dependency-light building blocks that every
//! other crate in the workspace relies on:
//!
//! - [`parallel`]: fork-join data parallelism (`parallel_for`,
//!   `parallel_map`) dispatched onto a lazily-initialized persistent worker
//!   pool, so the workspace does not need a third-party thread-pool crate.
//! - [`rng`]: deterministic seeding helpers so every experiment in the
//!   reproduction is replayable bit-for-bit.
//! - [`topk`]: bounded top-k selection used by ground-truth computation and
//!   host-side result reduction.
//! - [`bitset`]: a fixed-capacity bitset used for visited tracking in
//!   reference (non-simulated) code paths.
//! - [`stats`]: summary statistics (mean, geometric mean, percentiles) used
//!   by the experiment harness.
//! - [`fmt`]: human-readable formatting of counts, bytes and durations for
//!   experiment reports.
//! - [`mod@crc32`]: dependency-free CRC-32 used by the durable store's segment
//!   and WAL checksums.
//! - [`aligned`]: 64-byte-aligned byte buffers with typed zero-copy word
//!   views — the audited aligned-read module backing segment opens.

pub mod aligned;
pub mod bitset;
pub mod crc32;
pub mod fmt;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod topk;

pub use aligned::{put_le_words, AlignedBytes};
pub use bitset::FixedBitSet;
pub use crc32::{crc32, Crc32};
#[doc(hidden)]
pub use parallel::parallel_for_spawning;
pub use parallel::{available_threads, parallel_chunks_mut, parallel_for, parallel_map};
pub use rng::{seed_from_parts, small_rng, SeedStream};
pub use stats::Summary;
pub use topk::TopK;
