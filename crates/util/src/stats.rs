//! Summary statistics for experiment reporting.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean; 0 when empty.
    pub mean: f64,
    /// Minimum; 0 when empty.
    pub min: f64,
    /// Maximum; 0 when empty.
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Sample standard deviation; 0 for fewer than two samples.
    pub stddev: f64,
}

impl Summary {
    /// Computes summary statistics over `values`.
    ///
    /// Non-finite values are ignored. Returns the zero summary for an empty
    /// (or all-non-finite) input.
    pub fn of(values: &[f64]) -> Self {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                stddev: 0.0,
            };
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let count = v.len();
        let mean = v.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        Self {
            count,
            mean,
            min: v[0],
            max: v[count - 1],
            p50: percentile_sorted(&v, 0.50),
            p95: percentile_sorted(&v, 0.95),
            p99: percentile_sorted(&v, 0.99),
            stddev: var.sqrt(),
        }
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
///
/// `q` is in `[0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Geometric mean of positive values.
///
/// Values `<= 0` or non-finite are ignored; returns 0 when nothing remains.
/// Used for the paper's headline "3.24× geomean speedup" style aggregates.
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> =
        values.iter().copied().filter(|v| v.is_finite() && *v > 0.0).map(f64::ln).collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Linearly interpolates `y` at `x` on a polyline of `(x, y)` points sorted by
/// ascending `x`. Clamps outside the range. Returns `None` for empty input.
///
/// Used to read QPS at a fixed recall (e.g. "QPS at 95 % recall") off a
/// measured QPS–recall curve.
pub fn interp_at(points: &[(f64, f64)], x: f64) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    if x <= points[0].0 {
        return Some(points[0].1);
    }
    if x >= points[points.len() - 1].0 {
        return Some(points[points.len() - 1].1);
    }
    for w in points.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x >= x0 && x <= x1 {
            if x1 == x0 {
                return Some(y0.max(y1));
            }
            let t = (x - x0) / (x1 - x0);
            return Some(y0 + t * (y1 - y0));
        }
    }
    Some(points[points.len() - 1].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_ignores_nan() {
        let s = Summary::of(&[f64::NAN, 1.0, f64::INFINITY, 3.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn geomean_matches_hand_computed() {
        let g = geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[-1.0, 0.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile_sorted(&v, 0.0), 0.0);
        assert_eq!(percentile_sorted(&v, 1.0), 10.0);
        assert_eq!(percentile_sorted(&v, 0.5), 5.0);
    }

    #[test]
    fn interp_clamps_and_interpolates() {
        let pts = [(0.0, 0.0), (1.0, 10.0)];
        assert_eq!(interp_at(&pts, -1.0), Some(0.0));
        assert_eq!(interp_at(&pts, 2.0), Some(10.0));
        assert_eq!(interp_at(&pts, 0.5), Some(5.0));
        assert_eq!(interp_at(&[], 0.5), None);
    }

    #[test]
    fn interp_handles_duplicate_x() {
        let pts = [(0.0, 1.0), (0.5, 3.0), (0.5, 7.0), (1.0, 9.0)];
        let y = interp_at(&pts, 0.5).unwrap();
        assert!((3.0..=7.0).contains(&y));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn summary_bounds_hold(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&values);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.p50 && s.p50 <= s.max);
            prop_assert!(s.p50 <= s.p95 + 1e-9 && s.p95 <= s.p99 + 1e-9);
        }

        #[test]
        fn geomean_between_min_and_max(values in proptest::collection::vec(0.001f64..1e4, 1..100)) {
            let g = geomean(&values);
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(0.0f64, f64::max);
            prop_assert!(g >= min * 0.999 && g <= max * 1.001);
        }
    }
}
