//! PathWeaver — a pure-Rust reproduction of "PathWeaver: A High-Throughput
//! Multi-GPU System for Graph-Based Approximate Nearest Neighbor Search"
//! (USENIX ATC 2025).
//!
//! This umbrella crate re-exports the workspace crates under one namespace:
//!
//! - [`util`] — parallelism, RNG, top-k, statistics.
//! - [`obs`] — query-level observability: metrics registry, stage spans,
//!   structured traces (off by default, `PATHWEAVER_OBS=1` /
//!   `PATHWEAVER_TRACE=1` to enable).
//! - [`vector`] — vector storage, distance metrics, sign-bit direction codes.
//! - [`datasets`] — synthetic dataset profiles, ground truth, recall, IO.
//! - [`graph`] — proximity graph construction (CAGRA-style, HNSW, GGNN),
//!   ghost shards, inter-shard edges.
//! - [`gpusim`] — the simulated multi-GPU substrate (device cost model, ring
//!   interconnect, pipelined executor).
//! - [`search`] — the beam-search kernel with direction-guided selection.
//! - [`core`] — the PathWeaver framework API and the baselines.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment map.

#![forbid(unsafe_code)]

pub use pathweaver_core as core;
pub use pathweaver_datasets as datasets;
pub use pathweaver_gpusim as gpusim;
pub use pathweaver_graph as graph;
pub use pathweaver_obs as obs;
pub use pathweaver_search as search;
pub use pathweaver_util as util;
pub use pathweaver_vector as vector;

pub use pathweaver_core::prelude;
