//! Cross-crate baseline behaviour: the relationships the paper's evaluation
//! rests on must hold at test scale.

use pathweaver::core::baselines::{CagraBaseline, GgnnBaseline, HnswBaseline};
use pathweaver::graph::ggnn::GgnnParams;
use pathweaver::graph::HnswParams;
use pathweaver::prelude::*;

fn small_ggnn_params() -> GgnnParams {
    GgnnParams { degree: 12, selection_ratio: 0.05, selection_degree: 6, ..Default::default() }
}

#[test]
fn all_baselines_run_on_the_same_workload() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 12, 10, 41);
    let params = SearchParams::default();

    let cagra = CagraBaseline::build(&w.base, 2).unwrap();
    let r1 = recall_batch(&w.ground_truth, &cagra.search(&w.queries, &params).results, 10);

    let ggnn = GgnnBaseline::build(&w.base, 2, &small_ggnn_params()).unwrap();
    let r2 = recall_batch(&w.ground_truth, &ggnn.search(&w.queries, &params).results, 10);

    let hnsw = HnswBaseline::build(&w.base, &HnswParams::default());
    let r3 = recall_batch(&w.ground_truth, &hnsw.search_cpu(&w.queries, 10, 64).results, 10);

    assert!(r1 > 0.75, "CAGRA recall {r1}");
    assert!(r2 > 0.7, "GGNN recall {r2}");
    assert!(r3 > 0.75, "HNSW recall {r3}");
}

#[test]
fn sharding_baseline_iteration_blowup() {
    // Fig 3's diagnosis: total per-query iterations grow with shard count.
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 12, 10, 42);
    let params = SearchParams::default();
    let one = CagraBaseline::build(&w.base, 1).unwrap();
    let four = CagraBaseline::build(&w.base, 4).unwrap();
    let i1 = one.search(&w.queries, &params).stats.iterations;
    let i4 = four.search(&w.queries, &params).stats.iterations;
    assert!(i4 > i1 * 2, "iterations should blow up with shards: {i1} vs {i4}");
}

#[test]
fn discarded_visits_exceed_half() {
    // Table 1's shape: most visited nodes never make the final buffer.
    let w = DatasetProfile::sift_like().workload(Scale::Test, 12, 10, 43);
    let cagra = CagraBaseline::build(&w.base, 1).unwrap();
    let out = cagra.search(&w.queries, &SearchParams::default());
    assert!(out.stats.discard_ratio() > 0.5, "ratio {}", out.stats.discard_ratio());
}

#[test]
fn direction_beats_random_discard() {
    // Fig 15's shape: at the same discard volume, direction-guided
    // filtering loses no more recall than random filtering.
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 24, 10, 44);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(1)).unwrap();
    let base = SearchParams { max_iterations: 20, ..SearchParams::default() };
    let dgs = SearchParams {
        dgs: Some(DgsParams { keep_ratio: 0.3, cooldown_ratio: 0.3, threshold_mode: false }),
        ..base
    };
    let rnd = SearchParams { random_discard: true, ..dgs };
    let r_dgs = recall_batch(&w.ground_truth, &idx.search_pipelined(&w.queries, &dgs).results, 10);
    let r_rnd = recall_batch(&w.ground_truth, &idx.search_pipelined(&w.queries, &rnd).results, 10);
    assert!(
        r_dgs + 1e-9 >= r_rnd,
        "direction filtering ({r_dgs}) must not lose to random ({r_rnd})"
    );
}

#[test]
fn ggnn_uses_denser_graphs_than_cagra_default() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 5, 45);
    let ggnn = GgnnBaseline::build(&w.base, 1, &GgnnParams::default()).unwrap();
    assert_eq!(ggnn.index.shards[0].graph.degree(), 24);
    assert!(ggnn.index.shards[0].ghost.is_some(), "selection layer expected");
}
