//! Persistence integration: graphs and datasets round-trip through the
//! filesystem formats, experiment records reload intact, and the legacy
//! store loader reports the exact error variant for each damage mode.

mod common;

use common::TempStore;
use pathweaver::core::report::ExperimentRecord;
use pathweaver::core::store::legacy::save_index_legacy;
use pathweaver::core::store::{load_index, StoreError};
use pathweaver::datasets::io::{read_fvecs_file, read_ivecs, write_fvecs, write_ivecs};
use pathweaver::graph::serialize::{read_graph, write_graph};
use pathweaver::graph::{cagra_build, CagraBuildParams};
use pathweaver::prelude::*;

#[test]
fn built_graph_roundtrips_through_disk() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 5, 51);
    let graph = cagra_build(&w.base, &CagraBuildParams::with_degree(8));
    let dir = TempStore::new("graph");
    let path = dir.join("shard0.pwgr");
    write_graph(std::fs::File::create(&path).unwrap(), &graph).unwrap();
    let back = read_graph(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(back, graph);
}

#[test]
fn fvecs_file_feeds_the_index_builder() {
    // Write a synthetic corpus as fvecs, read it back as a real corpus
    // would be, and index it.
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 6, 5, 52);
    let dir = TempStore::new("fvecs");
    let path = dir.join("base.fvecs");
    write_fvecs(std::fs::File::create(&path).unwrap(), &w.base).unwrap();
    let loaded = read_fvecs_file(&path, None).unwrap();
    assert_eq!(loaded, w.base);

    let idx = PathWeaverIndex::build(&loaded, &PathWeaverConfig::test_scale(2)).unwrap();
    let out = idx.search_pipelined(&w.queries, &SearchParams::default());
    let recall = recall_batch(&w.ground_truth, &out.results, 5);
    assert!(recall > 0.8, "recall {recall}");
}

#[test]
fn ground_truth_roundtrips_as_ivecs() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 8, 10, 53);
    let records: Vec<Vec<u32>> = (0..8).map(|q| w.ground_truth.neighbors(q).to_vec()).collect();
    let mut buf = Vec::new();
    write_ivecs(&mut buf, &records).unwrap();
    let back = read_ivecs(&buf[..], None).unwrap();
    assert_eq!(back, records);
}

#[test]
fn partial_fvecs_read_respects_limit() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 5, 54);
    let dir = TempStore::new("limit");
    let path = dir.join("base.fvecs");
    write_fvecs(std::fs::File::create(&path).unwrap(), &w.base).unwrap();
    let firsthalf = read_fvecs_file(&path, Some(w.base.len() / 2)).unwrap();
    assert_eq!(firsthalf.len(), w.base.len() / 2);
    assert_eq!(firsthalf.row(0), w.base.row(0));
}

#[test]
fn experiment_records_round_trip() {
    let dir = TempStore::new("record");
    let mut rec = ExperimentRecord::new("fig0", "integration smoke");
    rec.note("simulated clock");
    rec.push_row(&serde_json::json!({"dataset": "sift-like", "qps": 123.0}));
    let path = rec.save(dir.path()).unwrap();
    let back = ExperimentRecord::load(&path).unwrap();
    assert_eq!(back.id, rec.id);
    assert_eq!(back.rows.len(), 1);
}

// --- Legacy store loader error paths ------------------------------------
//
// Each damage mode must surface as a *specific* `StoreError` variant, not a
// panic and not a mis-filed variant: a missing file is `Io`, a structural
// lie is `Malformed`. Pinning the variants keeps CLI error messages and the
// corruption matrix (tools/check_store.sh) honest.

fn legacy_store(tag: &str, seed: u64) -> (TempStore, PathWeaverIndex) {
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, seed);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    let dir = TempStore::new(tag);
    save_index_legacy(&idx, dir.path()).unwrap();
    (dir, idx)
}

#[test]
fn legacy_missing_meta_is_io_error() {
    let (dir, _idx) = legacy_store("legacy-nometa", 61);
    std::fs::remove_file(dir.join("meta.json")).unwrap();
    match load_index(dir.path()) {
        Err(StoreError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("expected Io(NotFound), got {other:?}"),
    }
}

#[test]
fn legacy_truncated_graph_is_malformed() {
    let (dir, _idx) = legacy_store("legacy-truncgraph", 62);
    let victim = dir.join("shard-001/graph.pwgr");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes.truncate(bytes.len() - 7);
    std::fs::write(&victim, bytes).unwrap();
    match load_index(dir.path()) {
        Err(StoreError::Malformed(msg)) => {
            assert!(msg.contains("bad graph file"), "unexpected message: {msg}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn legacy_shard_count_mismatch_is_malformed() {
    let (dir, _idx) = legacy_store("legacy-shardcount", 63);
    std::fs::remove_dir_all(dir.join("shard-001")).unwrap();
    match load_index(dir.path()) {
        Err(StoreError::Malformed(msg)) => {
            assert!(msg.contains("shard-count mismatch"), "unexpected message: {msg}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn legacy_dim_mismatch_is_malformed() {
    let (dir, _idx) = legacy_store("legacy-dim", 64);
    // Rewrite shard 0's vectors with a different dimensionality.
    let narrow = pathweaver::vector::VectorSet::from_fn(10, 3, |r, c| (r * 3 + c) as f32);
    write_fvecs(std::fs::File::create(dir.join("shard-000/vectors.fvecs")).unwrap(), &narrow)
        .unwrap();
    match load_index(dir.path()) {
        Err(StoreError::Malformed(msg)) => {
            assert!(msg.contains("dim"), "unexpected message: {msg}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}
