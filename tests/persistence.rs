//! Persistence integration: graphs and datasets round-trip through the
//! filesystem formats, and experiment records reload intact.

use pathweaver::core::report::ExperimentRecord;
use pathweaver::datasets::io::{read_fvecs_file, read_ivecs, write_fvecs, write_ivecs};
use pathweaver::graph::serialize::{read_graph, write_graph};
use pathweaver::graph::{cagra_build, CagraBuildParams};
use pathweaver::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("pw-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn built_graph_roundtrips_through_disk() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 5, 51);
    let graph = cagra_build(&w.base, &CagraBuildParams::with_degree(8));
    let dir = temp_dir("graph");
    let path = dir.join("shard0.pwgr");
    write_graph(std::fs::File::create(&path).unwrap(), &graph).unwrap();
    let back = read_graph(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(back, graph);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fvecs_file_feeds_the_index_builder() {
    // Write a synthetic corpus as fvecs, read it back as a real corpus
    // would be, and index it.
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 6, 5, 52);
    let dir = temp_dir("fvecs");
    let path = dir.join("base.fvecs");
    write_fvecs(std::fs::File::create(&path).unwrap(), &w.base).unwrap();
    let loaded = read_fvecs_file(&path, None).unwrap();
    assert_eq!(loaded, w.base);

    let idx = PathWeaverIndex::build(&loaded, &PathWeaverConfig::test_scale(2)).unwrap();
    let out = idx.search_pipelined(&w.queries, &SearchParams::default());
    let recall = recall_batch(&w.ground_truth, &out.results, 5);
    assert!(recall > 0.8, "recall {recall}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ground_truth_roundtrips_as_ivecs() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 8, 10, 53);
    let records: Vec<Vec<u32>> = (0..8).map(|q| w.ground_truth.neighbors(q).to_vec()).collect();
    let mut buf = Vec::new();
    write_ivecs(&mut buf, &records).unwrap();
    let back = read_ivecs(&buf[..], None).unwrap();
    assert_eq!(back, records);
}

#[test]
fn partial_fvecs_read_respects_limit() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 5, 54);
    let dir = temp_dir("limit");
    let path = dir.join("base.fvecs");
    write_fvecs(std::fs::File::create(&path).unwrap(), &w.base).unwrap();
    let firsthalf = read_fvecs_file(&path, Some(w.base.len() / 2)).unwrap();
    assert_eq!(firsthalf.len(), w.base.len() / 2);
    assert_eq!(firsthalf.row(0), w.base.row(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiment_records_round_trip() {
    let dir = temp_dir("record");
    let mut rec = ExperimentRecord::new("fig0", "integration smoke");
    rec.note("simulated clock");
    rec.push_row(&serde_json::json!({"dataset": "sift-like", "qps": 123.0}));
    let path = rec.save(&dir).unwrap();
    let back = ExperimentRecord::load(&path).unwrap();
    assert_eq!(back.id, rec.id);
    assert_eq!(back.rows.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}
