//! Durable-store integration: WAL-before-ack mutations survive reopen, and
//! the crash-recovery contract holds — a process killed mid-append leaves a
//! store that reopens to exactly the state before the torn record.

mod common;

use common::TempStore;
use pathweaver::core::store::{is_segment_store, load_index, verify_store, StoreError, WAL_FILE};
use pathweaver::prelude::*;

fn build_index(seed: u64) -> (Workload, PathWeaverIndex) {
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 6, 5, seed);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    (w, idx)
}

fn search_all(idx: &PathWeaverIndex, queries: &pathweaver::vector::VectorSet) -> Vec<Vec<u32>> {
    idx.search_pipelined(queries, &SearchParams::default()).results
}

#[test]
fn durable_mutations_survive_reopen() {
    let (w, idx) = build_index(71);
    let dir = TempStore::new("durable-reopen");
    let mut durable = DurableIndex::create(idx, dir.path()).unwrap();

    let novel: Vec<f32> = w.base.row(2).iter().map(|x| x + 0.004).collect();
    let id = durable.insert(&novel).unwrap();
    assert!(durable.delete(1).unwrap());
    let before = search_all(&durable, &w.queries);

    drop(durable); // Simulated clean shutdown: no compact, WAL still pending.
    let reopened = DurableIndex::open(dir.path()).unwrap();
    assert_eq!(reopened.num_vectors, w.base.len() + 1);
    assert_eq!(search_all(&reopened, &w.queries), before);

    let mut q = pathweaver::vector::VectorSet::empty(reopened.dim());
    q.push(&novel);
    assert!(search_all(&reopened, &q)[0].contains(&id), "WAL insert lost on reopen");
}

#[test]
fn wal_replay_extends_quantized_tier_identically() {
    // Replay goes through `PathWeaverIndex::insert`, which pushes onto the
    // quantized tier under the shard's frozen grid — so a reopened index
    // must answer quantized searches bitwise-identically to the live one.
    let (w, idx) = build_index(75);
    let dir = TempStore::new("durable-quantized");
    let mut durable = DurableIndex::create(idx, dir.path()).unwrap();
    for r in 0..3 {
        let v: Vec<f32> = w.base.row(r).iter().map(|x| x + 0.002).collect();
        durable.insert(&v).unwrap();
    }
    let params = SearchParams { quantized: true, ..SearchParams::default() };
    let before = durable.search_pipelined(&w.queries, &params).results;

    drop(durable); // WAL still pending: reopen must replay the inserts.
    let reopened = DurableIndex::open(dir.path()).unwrap();
    assert_eq!(reopened.search_pipelined(&w.queries, &params).results, before);
}

#[test]
fn wal_replay_is_idempotent_across_noop_deletes_and_reinserts() {
    // Every delete is WAL-logged even when it applies nothing (unknown id,
    // double delete), so replay walks the exact mutation history including
    // the no-ops. Reopening — once, or repeatedly without compaction — must
    // converge to the same state as the live index.
    let (w, idx) = build_index(77);
    let dir = TempStore::new("durable-idempotent-replay");
    let mut durable = DurableIndex::create(idx, dir.path()).unwrap();

    let novel: Vec<f32> = w.base.row(3).iter().map(|x| x + 0.006).collect();
    let id = durable.insert(&novel).unwrap();
    assert_eq!(durable.delete_outcome(u32::MAX).unwrap(), DeleteOutcome::Unknown);
    assert_eq!(durable.delete_outcome(1).unwrap(), DeleteOutcome::Applied);
    assert_eq!(durable.delete_outcome(1).unwrap(), DeleteOutcome::AlreadyDeleted);
    let second: Vec<f32> = w.base.row(5).iter().map(|x| x + 0.008).collect();
    let id2 = durable.insert(&second).unwrap();
    assert_eq!(durable.delete_outcome(id2).unwrap(), DeleteOutcome::Applied);
    assert_eq!(durable.delete_outcome(id2).unwrap(), DeleteOutcome::AlreadyDeleted);
    let before = search_all(&durable, &w.queries);
    let count = durable.num_vectors;

    drop(durable); // Clean shutdown, WAL still pending: reopen replays everything.
    for round in 0..2 {
        let mut reopened = DurableIndex::open(dir.path()).unwrap();
        assert_eq!(reopened.num_vectors, count, "replay changed the count (round {round})");
        assert_eq!(search_all(&reopened, &w.queries), before, "replay diverged (round {round})");
        // The replayed tombstones must report as already present, not re-apply.
        assert_eq!(reopened.delete_outcome(1).unwrap(), DeleteOutcome::AlreadyDeleted);
        assert_eq!(reopened.delete_outcome(id2).unwrap(), DeleteOutcome::AlreadyDeleted);
        // The replayed insert is live and searchable under its original id.
        let mut q = pathweaver::vector::VectorSet::empty(reopened.dim());
        q.push(&novel);
        assert!(search_all(&reopened, &q)[0].contains(&id), "replayed insert lost");
    }
}

#[test]
fn torn_wal_tail_recovers_to_pre_record_state_at_every_offset() {
    // The crash-recovery contract (ISSUE acceptance): kill the process at
    // any byte offset inside the last WAL append; on reopen, search results
    // are identical to an index that never saw the torn record.
    let (w, idx) = build_index(72);
    let dir = TempStore::new("durable-torn");
    let mut durable = DurableIndex::create(idx, dir.path()).unwrap();
    let a: Vec<f32> = w.base.row(0).iter().map(|x| x + 0.003).collect();
    durable.insert(&a).unwrap();
    let baseline = search_all(&durable, &w.queries);
    let intact_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();

    // Append one more record, then tear it at a spread of offsets.
    let b: Vec<f32> = w.base.row(1).iter().map(|x| x + 0.007).collect();
    durable.insert(&b).unwrap();
    drop(durable);
    let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
    assert!(full.len() as u64 > intact_len);

    for cut in intact_len..full.len() as u64 {
        std::fs::write(dir.join(WAL_FILE), &full[..cut as usize]).unwrap();
        let reopened = DurableIndex::open(dir.path())
            .unwrap_or_else(|e| panic!("reopen failed at cut {cut}: {e:?}"));
        assert_eq!(reopened.num_vectors, w.base.len() + 1, "wrong count at cut {cut}");
        assert_eq!(search_all(&reopened, &w.queries), baseline, "divergence at cut {cut}");
        drop(reopened); // Reopen repairs the tail; restore the torn file for the next cut.
    }
}

#[test]
fn compact_folds_wal_and_store_stays_usable() {
    let (w, idx) = build_index(73);
    let dir = TempStore::new("durable-compact");
    let mut durable = DurableIndex::create(idx, dir.path()).unwrap();
    for r in 0..3 {
        let v: Vec<f32> = w.base.row(r).iter().map(|x| x + 0.002).collect();
        durable.insert(&v).unwrap();
    }
    assert!(durable.delete(0).unwrap());
    let before = search_all(&durable, &w.queries);

    durable.compact().unwrap();
    let report = verify_store(dir.path()).unwrap();
    assert_eq!(report.wal_records, 0, "compact must fold the WAL into the segment");
    assert_eq!(report.wal_torn_bytes, 0);

    // Post-compact the store keeps accepting mutations and reopens cleanly.
    let v: Vec<f32> = w.base.row(4).iter().map(|x| x + 0.009).collect();
    durable.insert(&v).unwrap();
    drop(durable);
    let reopened = DurableIndex::open(dir.path()).unwrap();
    assert_eq!(reopened.num_vectors, w.base.len() + 4);
    assert_eq!(search_all(&reopened, &w.queries), before);
}

#[test]
fn verify_store_reports_pending_and_torn_wal_bytes() {
    let (w, idx) = build_index(74);
    let dir = TempStore::new("durable-verify");
    let mut durable = DurableIndex::create(idx, dir.path()).unwrap();
    let v: Vec<f32> = w.base.row(0).iter().map(|x| x + 0.001).collect();
    durable.insert(&v).unwrap();
    durable.delete(2).unwrap();
    drop(durable);

    let report = verify_store(dir.path()).unwrap();
    assert!(report.segment_format);
    assert_eq!(report.wal_records, 2);
    assert_eq!(report.wal_torn_bytes, 0);

    // Tear off the last 3 bytes: verify reports the torn tail, doesn't fail.
    let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
    std::fs::write(dir.join(WAL_FILE), &bytes[..bytes.len() - 3]).unwrap();
    let torn = verify_store(dir.path()).unwrap();
    assert_eq!(torn.wal_records, 1);
    assert!(torn.wal_torn_bytes > 0);
}

#[test]
fn open_rejects_legacy_directories() {
    let (_w, idx) = build_index(75);
    let dir = TempStore::new("durable-legacy");
    pathweaver::core::store::legacy::save_index_legacy(&idx, dir.path()).unwrap();
    match DurableIndex::open(dir.path()) {
        Err(StoreError::Malformed(msg)) => {
            assert!(msg.contains("pwctl compact"), "should point at the migration path: {msg}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn legacy_directory_migrates_through_save_index() {
    // `pwctl compact` on a legacy directory is load_index + save_index;
    // the result must be a segment store with identical search behavior.
    let (w, idx) = build_index(76);
    let dir = TempStore::new("durable-migrate");
    pathweaver::core::store::legacy::save_index_legacy(&idx, dir.path()).unwrap();
    assert!(!is_segment_store(dir.path()));

    let migrated = load_index(dir.path()).unwrap();
    pathweaver::core::store::save_index(&migrated, dir.path()).unwrap();
    assert!(is_segment_store(dir.path()));

    let reloaded = load_index(dir.path()).unwrap();
    assert_eq!(search_all(&idx, &w.queries), search_all(&reloaded, &w.queries));
}
