//! Shared helpers for the integration suite.
//!
//! Compiled separately into every integration-test binary, so not every
//! binary uses every helper.
#![allow(dead_code)]

use std::path::{Path, PathBuf};

/// RAII temp directory for store/persistence tests.
///
/// Earlier tests built paths by hand and removed them with a trailing
/// `remove_dir_all` — which never ran when an assertion failed, leaking
/// directories into the next run. The guard removes the directory in
/// `Drop`, which also runs while a failed assertion's panic unwinds, and
/// scrubs any stale leftover of the same name on creation.
pub struct TempStore(PathBuf);

impl TempStore {
    /// Creates (or recreates, empty) `$TMPDIR/pw-it-<tag>-<pid>`.
    pub fn new(tag: &str) -> Self {
        let d = std::env::temp_dir().join(format!("pw-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        Self(d)
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.0
    }

    /// A path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
