//! Observability contract tests: enabling metrics + tracing must not change
//! search results or the simulated clock, and the instrumented view itself
//! must be deterministic run-to-run.

use pathweaver::obs;
use pathweaver::obs::trace;
use pathweaver::prelude::*;

/// Tests in this binary toggle the process-global observability flags, so
/// they serialize on one lock (the harness runs tests in parallel).
fn flag_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn workload() -> Workload {
    DatasetProfile::deep10m_like().workload(Scale::Test, 16, 10, 77)
}

#[test]
fn tracing_run_is_fully_deterministic() {
    let _g = flag_guard();
    let w = workload();
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(3)).unwrap();
    let params = SearchParams::default();

    let run = || {
        obs::reset();
        let out = idx.search_pipelined(&w.queries, &params);
        let traces: Vec<_> = trace::drain_sorted().iter().map(|e| e.normalized()).collect();
        // Wall-clock metrics differ across runs by nature; everything else
        // in the snapshot is derived from the simulated clock and must not.
        let snapshot = obs::global_snapshot().without_wallclock();
        (out.hits.clone(), out.timeline.aggregate_counters(), traces, snapshot)
    };

    obs::set_tracing(true);
    let (hits_a, counters_a, traces_a, snap_a) = run();
    let (hits_b, counters_b, traces_b, snap_b) = run();
    obs::set_tracing(false);
    obs::set_enabled(false);
    obs::reset();

    assert!(!traces_a.is_empty(), "tracing produced no events");
    assert_eq!(hits_a, hits_b, "search results drifted across traced runs");
    assert_eq!(counters_a, counters_b, "simulated clock drifted across traced runs");
    assert_eq!(traces_a, traces_b, "normalized traces differ across runs");
    assert_eq!(snap_a, snap_b, "non-wallclock metric snapshots differ across runs");
}

/// The determinism contract, end to end: two full instrumented passes
/// (graph build through pipelined search, both running on the parallel
/// worker pool) must render **byte-identical** metrics JSON once wall-clock
/// histograms are filtered out. Comparing the serialized bytes rather than
/// the parsed structures also pins the serialization order itself — a
/// regression from `BTreeMap` back to an unordered map fails here even if
/// the values still match.
#[test]
fn metrics_json_is_byte_identical_across_runs() {
    let _g = flag_guard();
    let w = workload();
    let params = SearchParams::default();

    let run = || {
        obs::reset();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(3)).unwrap();
        let _ = idx.search_pipelined(&w.queries, &params);
        obs::global_snapshot().without_wallclock().to_json()
    };

    obs::set_enabled(true);
    let json_a = run();
    let json_b = run();
    obs::set_enabled(false);
    obs::reset();

    assert!(!json_a.is_empty() && json_a.contains("counters"));
    assert_eq!(
        json_a.as_bytes(),
        json_b.as_bytes(),
        "metrics JSON is not byte-identical across runs:\n--- A ---\n{json_a}\n--- B ---\n{json_b}"
    );
}

#[test]
fn enabling_observability_does_not_perturb_search() {
    let _g = flag_guard();
    let w = workload();
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    let params = SearchParams::default();

    obs::set_tracing(false);
    obs::set_enabled(false);
    let off = idx.search_pipelined(&w.queries, &params);

    obs::set_tracing(true);
    obs::reset();
    let on = idx.search_pipelined(&w.queries, &params);
    obs::set_tracing(false);
    obs::set_enabled(false);
    obs::reset();

    assert_eq!(off.hits, on.hits, "observability changed search results");
    assert_eq!(
        off.timeline.aggregate_counters(),
        on.timeline.aggregate_counters(),
        "observability perturbed the simulated clock"
    );
}

#[test]
fn trace_covers_every_stage_and_roundtrips_through_jsonl() {
    let _g = flag_guard();
    let w = workload();
    let devices = 3;
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(devices)).unwrap();

    obs::set_tracing(true);
    obs::reset();
    let _ = idx.search_pipelined(&w.queries, &SearchParams::default());
    let events = trace::drain_sorted();
    obs::set_tracing(false);
    obs::set_enabled(false);
    obs::reset();

    // One event per (chunk, stage) pair of the ring.
    assert_eq!(events.len(), devices * devices);
    for e in &events {
        assert!(e.queries > 0);
        assert!(e.iterations > 0, "stage ran zero iterations: {e:?}");
        assert!(e.bytes_read > 0);
        // Ring schedule: chunk c runs stage s on device (c + s) mod n.
        assert_eq!(e.device, (e.chunk + e.stage) % devices);
    }
    // Every stage except the last forwards seeds to the next device.
    let total_comm: u64 = events.iter().map(|e| e.comm_bytes).sum();
    assert!(total_comm > 0);

    let path = std::env::temp_dir().join(format!("pw-obs-trace-{}.jsonl", std::process::id()));
    trace::write_jsonl(&path, &events).unwrap();
    let back = trace::read_jsonl(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back, events, "JSONL roundtrip altered the trace");
}

#[test]
fn metrics_summary_names_the_pipeline_stages() {
    let _g = flag_guard();
    let w = workload();
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();

    obs::set_enabled(true);
    obs::reset();
    let _ = idx.search_pipelined(&w.queries, &SearchParams::default());
    let snap = obs::global_snapshot();
    obs::set_enabled(false);
    obs::reset();

    for stage in 0..2 {
        for metric in ["wall_ns", "iterations", "dist_calcs"] {
            let key = format!("pipeline.stage{stage}.{metric}");
            assert!(snap.histograms.contains_key(&key), "missing histogram {key}");
        }
    }
    assert!(snap.counters["pipeline.dist_calcs"] > 0);
    assert!(snap.counters["search.queries"] > 0);
    // Ghost staging ran on stage 0 and is attributed separately.
    assert!(snap.counters["ghost.batches"] > 0);
    // The wallclock filter drops exactly the wall-time histograms.
    let filtered = snap.without_wallclock();
    assert!(filtered.histograms.keys().all(|k| !k.ends_with("wall_ns")));
    assert!(filtered.histograms.contains_key("pipeline.stage0.iterations"));
}
