//! Integration tests for the streaming serve layer: the streamed path must
//! be bit-identical to `search_pipelined` (the determinism contract of
//! `pathweaver::core::serve`), both for a single coalesced batch and across
//! a stream of overlapped micro-batches.

use std::sync::Arc;

use pathweaver::core::serve::{serve_once, ServeConfig, Server};
use pathweaver::prelude::*;

fn serve_all(server: &Server, queries: &pathweaver::vector::VectorSet) -> Vec<Vec<(f32, u32)>> {
    let tickets: Vec<_> =
        (0..queries.len()).map(|r| server.try_submit(queries.row(r)).unwrap()).collect();
    tickets.into_iter().map(|t| t.wait().unwrap().hits).collect()
}

/// Serializes tests that pin `PATHWEAVER_THREADS`; parallel test threads
/// would otherwise race on the process-wide environment.
fn with_single_thread<R>(f: impl FnOnce() -> R) -> R {
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prior = std::env::var("PATHWEAVER_THREADS").ok();
    std::env::set_var("PATHWEAVER_THREADS", "1");
    let result = f();
    match prior {
        Some(v) => std::env::set_var("PATHWEAVER_THREADS", v),
        None => std::env::remove_var("PATHWEAVER_THREADS"),
    }
    result
}

/// Asserts two per-query hit lists are bit-identical (distances compared as
/// raw f32 bits, not approximately).
fn assert_hits_identical(a: &[Vec<(f32, u32)>], b: &[Vec<(f32, u32)>], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: query count");
    for (q, (ha, hb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ha.len(), hb.len(), "{label}: query {q} hit count");
        for (rank, (&(da, ia), &(db, ib))) in ha.iter().zip(hb).enumerate() {
            assert_eq!(ia, ib, "{label}: query {q} rank {rank} id");
            assert_eq!(
                da.to_bits(),
                db.to_bits(),
                "{label}: query {q} rank {rank} distance ({da} vs {db})"
            );
        }
    }
}

#[test]
fn serve_stream_is_bit_identical_to_search_pipelined() {
    with_single_thread(|| {
        for devices in [1usize, 2, 3] {
            let w = DatasetProfile::deep10m_like().workload(Scale::Test, 9, 10, 41);
            let idx = Arc::new(
                PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(devices)).unwrap(),
            );
            let params = SearchParams::default();
            let direct = idx.search_pipelined(&w.queries, &params);
            let served = serve_once(&idx, &w.queries, &params).unwrap();
            let label = format!("{devices} devices");
            assert_hits_identical(&direct.hits, &served.hits, &label);
            assert_eq!(direct.stats, served.stats, "{label}: stats diverged");
            assert_eq!(direct.results, served.results, "{label}: result ids diverged");
        }
    });
}

#[test]
fn dynamic_serve_without_mutation_is_bit_identical_to_static_serve() {
    // The snapshot-pinned path through `ConcurrentIndex` adds a level of
    // indirection per batch (pin the published snapshot, read through it).
    // With zero mutations that indirection must be invisible: same hits,
    // same raw f32 distance bits, same ids as the plain pipelined search.
    with_single_thread(|| {
        for devices in [1usize, 2] {
            let w = DatasetProfile::deep10m_like().workload(Scale::Test, 9, 10, 53);
            let idx =
                PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(devices)).unwrap();
            let params = SearchParams::default();
            let direct = idx.search_pipelined(&w.queries, &params);

            let concurrent = Arc::new(ConcurrentIndex::new(idx));
            let config =
                ServeConfig { max_batch: w.queries.len(), params, ..ServeConfig::default() };
            let server = Server::new_dynamic(Arc::clone(&concurrent), config).unwrap();
            let streamed = serve_all(&server, &w.queries);
            server.shutdown();

            let label = format!("dynamic zero-mutation, {devices} devices");
            assert_hits_identical(&direct.hits, &streamed, &label);
        }
    });
}

#[test]
fn serve_handles_fewer_queries_than_devices() {
    // One query on a four-device ring: three chunks are empty and must be
    // skipped, not shipped — on both the one-shot and the streamed path.
    with_single_thread(|| {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 1, 10, 43);
        let idx =
            Arc::new(PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(4)).unwrap());
        let params = SearchParams::default();
        let direct = idx.search_pipelined(&w.queries, &params);
        let served = serve_once(&idx, &w.queries, &params).unwrap();
        assert_hits_identical(&direct.hits, &served.hits, "1 query / 4 devices");
        assert_eq!(direct.stats, served.stats);
        assert!(!served.hits[0].is_empty());
    });
}

#[test]
fn overlapped_batches_match_per_batch_pipelined() {
    // Stream 8 queries through max_batch=2: the server forms four
    // consecutive pairs and keeps them overlapped in flight. Each pair must
    // still return exactly what a standalone `search_pipelined` over the
    // same two rows returns.
    with_single_thread(|| {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 47);
        let idx =
            Arc::new(PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap());
        let params = SearchParams::default();
        let config = ServeConfig {
            max_batch: 2,
            flush_interval_ms: 3_600_000.0, // Flush on size only.
            params,
            ..ServeConfig::default()
        };
        let server = Server::new(Arc::clone(&idx), config).unwrap();
        let tickets: Vec<_> =
            (0..w.queries.len()).map(|r| server.try_submit(w.queries.row(r)).unwrap()).collect();
        server.shutdown(); // Flushes any unpaired remainder and drains.
        let results: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();

        for pair in 0..w.queries.len() / 2 {
            let mut two = pathweaver::vector::VectorSet::empty(idx.dim());
            two.push(w.queries.row(2 * pair));
            two.push(w.queries.row(2 * pair + 1));
            let direct = idx.search_pipelined(&two, &params);
            let streamed: Vec<Vec<(f32, u32)>> =
                vec![results[2 * pair].hits.clone(), results[2 * pair + 1].hits.clone()];
            assert_hits_identical(&direct.hits, &streamed, &format!("pair {pair}"));
            assert_eq!(direct.stats, results[2 * pair].stats, "pair {pair} stats");
            assert_eq!(
                results[2 * pair].batch_id,
                results[2 * pair + 1].batch_id,
                "pair {pair} split across batches"
            );
        }
    });
}
