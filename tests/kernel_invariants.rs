//! Search-kernel invariants exercised through the public API, including the
//! §6.3 threshold-pruning extension and hostile parameter corners.

use pathweaver::datasets::{brute_force_knn, recall_batch};
use pathweaver::graph::{cagra_build, CagraBuildParams, DirectionTable};
use pathweaver::prelude::*;
use pathweaver::search::{search_batch, EntryPolicy, ShardContext};

fn fixture() -> (pathweaver::vector::VectorSet, pathweaver::graph::FixedDegreeGraph, DirectionTable)
{
    let w = DatasetProfile::sift_like().workload(Scale::Test, 1, 1, 81);
    let graph = cagra_build(&w.base, &CagraBuildParams::with_degree(16));
    let table = DirectionTable::build(&w.base, &graph);
    (w.base, graph, table)
}

#[test]
fn threshold_mode_reduces_work_and_holds_recall() {
    let (base, graph, table) = fixture();
    let queries = base.gather(&[5, 105, 305, 505, 705]);
    let gt = brute_force_knn(&base, &queries, 10);
    let ctx = ShardContext::new(&base, &graph, Some(&table));
    let exact = SearchParams { hash_bits: 13, ..SearchParams::default() };
    // Require ~55 % of direction bits to match: mildly selective.
    let threshold = SearchParams {
        dgs: Some(DgsParams { keep_ratio: 0.55, cooldown_ratio: 0.3, threshold_mode: true }),
        ..exact
    };
    let entries = [EntryPolicy::Random { count: 64 }];
    let b_exact = search_batch(&ctx, &queries, &exact, &entries);
    let b_thresh = search_batch(&ctx, &queries, &threshold, &entries);
    // Compare distance work per visited node rather than in total: at
    // Scale::Test the 800-point shard is ~330x denser than the paper's
    // (EXPERIMENTS.md, "Known deviations" #1), so pruning perturbs the
    // navigation path enough that total visits — and with them total
    // distance calcs — can drift up even while every expansion computes
    // strictly fewer distances. Per-visit work is the quantity the
    // threshold filter actually controls.
    let per_visit = |b: &pathweaver::search::BatchResult| {
        b.counters.dist_calcs as f64 / b.counters.nodes_visited.max(1) as f64
    };
    assert!(
        per_visit(&b_thresh) < per_visit(&b_exact),
        "threshold pruning must skip distance work per expansion: {} vs {}",
        per_visit(&b_thresh),
        per_visit(&b_exact)
    );
    assert!(b_thresh.stats.filtered_neighbors > 0);
    let to_ids = |b: &pathweaver::search::BatchResult| -> Vec<Vec<u32>> {
        b.hits.iter().map(|h| h.iter().map(|&(_, id)| id).collect()).collect()
    };
    let r_exact = recall_batch(&gt, &to_ids(&b_exact), 10);
    let r_thresh = recall_batch(&gt, &to_ids(&b_thresh), 10);
    assert!(r_exact - r_thresh <= 0.1, "threshold recall drop: {r_exact} -> {r_thresh}");
}

#[test]
fn expand_one_still_converges() {
    let (base, graph, _) = fixture();
    let ctx = ShardContext::new(&base, &graph, None);
    let queries = base.gather(&[42]);
    let params = SearchParams { expand: 1, max_iterations: 200, ..SearchParams::default() };
    let batch = search_batch(&ctx, &queries, &params, &[EntryPolicy::Random { count: 32 }]);
    assert_eq!(batch.hits[0][0].1, 42);
    assert_eq!(batch.stats.converged, 1);
}

#[test]
fn k_equals_beam_is_legal() {
    let (base, graph, _) = fixture();
    let ctx = ShardContext::new(&base, &graph, None);
    let queries = base.gather(&[7]);
    let params = SearchParams { k: 32, beam: 32, candidates: 32, ..SearchParams::default() };
    let batch = search_batch(&ctx, &queries, &params, &[EntryPolicy::Random { count: 32 }]);
    assert_eq!(batch.hits[0].len(), 32);
    assert_eq!(batch.hits[0][0].1, 7);
}

#[test]
fn duplicate_seeds_are_harmless() {
    let (base, graph, _) = fixture();
    let ctx = ShardContext::new(&base, &graph, None);
    let queries = base.gather(&[9]);
    let params = SearchParams::default();
    let entries = [EntryPolicy::Seeded { seeds: vec![3, 3, 3, 3, 9, 9], extra_random: 0 }];
    let batch = search_batch(&ctx, &queries, &params, &entries);
    assert_eq!(batch.hits[0][0].1, 9);
    let ids: std::collections::HashSet<u32> = batch.hits[0].iter().map(|h| h.1).collect();
    assert_eq!(ids.len(), batch.hits[0].len());
}

#[test]
fn out_of_range_seeds_are_dropped() {
    let (base, graph, _) = fixture();
    let ctx = ShardContext::new(&base, &graph, None);
    let queries = base.gather(&[11]);
    let params = SearchParams::default();
    // One valid seed among garbage; the kernel must filter silently.
    let entries = [EntryPolicy::Seeded { seeds: vec![11, 9_000_000], extra_random: 0 }];
    let batch = search_batch(&ctx, &queries, &params, &entries);
    assert_eq!(batch.hits[0][0].1, 11);
}

#[test]
fn random_discard_never_beats_direction_on_work_per_recall() {
    // At the same keep ratio both modes compute the same number of
    // candidate distances per expansion; the difference must show in
    // recall, not in counted work.
    let (base, graph, table) = fixture();
    let ctx = ShardContext::new(&base, &graph, Some(&table));
    let queries = base.gather(&[1, 201, 401]);
    let dgs = SearchParams {
        dgs: Some(DgsParams { keep_ratio: 0.5, cooldown_ratio: 0.3, threshold_mode: false }),
        max_iterations: 12,
        ..SearchParams::default()
    };
    let rnd = SearchParams { random_discard: true, ..dgs };
    let entries = [EntryPolicy::Random { count: 64 }];
    let b_dgs = search_batch(&ctx, &queries, &dgs, &entries);
    let b_rnd = search_batch(&ctx, &queries, &rnd, &entries);
    let per_exp_dgs = b_dgs.counters.dist_calcs as f64 / b_dgs.counters.nodes_visited.max(1) as f64;
    let per_exp_rnd = b_rnd.counters.dist_calcs as f64 / b_rnd.counters.nodes_visited.max(1) as f64;
    assert!((per_exp_dgs - per_exp_rnd).abs() < 4.0, "{per_exp_dgs} vs {per_exp_rnd}");
}

#[test]
fn wide_dimensions_round_trip_through_the_kernel() {
    // Gist-like dimensionality (960) exercises multi-word sign codes.
    let w = DatasetProfile::gist_like().workload(Scale::Test, 4, 5, 83);
    let graph = cagra_build(&w.base, &CagraBuildParams::with_degree(12));
    let table = DirectionTable::build(&w.base, &graph);
    assert_eq!(table.words_per_code(), 30);
    let ctx = ShardContext::new(&w.base, &graph, Some(&table));
    let params = SearchParams { dgs: Some(DgsParams::default()), ..SearchParams::default() };
    let batch = search_batch(&ctx, &w.queries, &params, &[EntryPolicy::Random { count: 32 }]);
    let results: Vec<Vec<u32>> =
        batch.hits.iter().map(|h| h.iter().map(|&(_, id)| id).collect()).collect();
    let recall = recall_batch(&w.ground_truth, &results, 5);
    assert!(recall > 0.7, "gist-like recall {recall}");
}
