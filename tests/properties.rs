//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary (small) workloads.

use pathweaver::datasets::{brute_force_knn, recall_batch, Distribution, SyntheticSpec};
use pathweaver::prelude::*;
use pathweaver::search::{EntryPolicy, ShardContext};
use pathweaver::vector::l2_squared;
use proptest::prelude::*;

/// A small searchable world for property tests.
fn world(n: usize, dim: usize, clusters: usize, seed: u64) -> pathweaver::vector::VectorSet {
    SyntheticSpec { dim, len: n, distribution: Distribution::Gmm { clusters, std: 0.25 }, seed }
        .generate()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn search_results_always_sorted_unique_and_in_range(
        seed in 0u64..1000,
        n in 300usize..600,
        dim in 4usize..24,
    ) {
        let base = world(n, dim, 5, seed);
        let queries = world(6, dim, 5, seed + 1);
        let idx = PathWeaverIndex::build(&base, &PathWeaverConfig::test_scale(2)).unwrap();
        let out = idx.search_pipelined(&queries, &SearchParams::default());
        for hits in &out.hits {
            prop_assert!(hits.len() <= 10);
            prop_assert!(hits.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted");
            let ids: std::collections::HashSet<u32> = hits.iter().map(|h| h.1).collect();
            prop_assert_eq!(ids.len(), hits.len(), "duplicates");
            prop_assert!(hits.iter().all(|h| (h.1 as usize) < n), "id out of range");
        }
    }

    #[test]
    fn reported_distances_are_true_distances(
        seed in 0u64..1000,
    ) {
        let base = world(400, 8, 4, seed);
        let queries = world(4, 8, 4, seed + 9);
        let idx = PathWeaverIndex::build(&base, &PathWeaverConfig::test_scale(2)).unwrap();
        let out = idx.search_pipelined(&queries, &SearchParams::default());
        for (q, hits) in out.hits.iter().enumerate() {
            for &(d, id) in hits {
                let truth = l2_squared(base.row(id as usize), queries.row(q));
                prop_assert!((d - truth).abs() <= 1e-3 * truth.max(1.0),
                    "hit distance {d} disagrees with true {truth}");
            }
        }
    }

    #[test]
    fn exhaustive_beam_equals_brute_force(
        seed in 0u64..500,
    ) {
        // With beam = n and unlimited iterations on a connected graph, the
        // kernel must find the exact top-k.
        let n = 250usize;
        let base = world(n, 6, 3, seed);
        let queries = world(3, 6, 3, seed + 5);
        let gt = brute_force_knn(&base, &queries, 5);
        let graph = pathweaver::graph::cagra_build(
            &base,
            &pathweaver::graph::CagraBuildParams::with_degree(16),
        );
        let ctx = ShardContext::new(&base, &graph, None);
        let params = SearchParams {
            k: 5,
            beam: n,
            candidates: n,
            expand: 8,
            max_iterations: 10 * n,
            hash_bits: 12,
            // Disable the convergence heuristic: this test checks the
            // exhaustive limit, so the loop must only stop when the whole
            // beam has been expanded.
            patience: usize::MAX,
            ..SearchParams::default()
        };
        let batch = pathweaver::search::search_batch(
            &ctx,
            &queries,
            &params,
            &[EntryPolicy::Random { count: n }],
        );
        let results: Vec<Vec<u32>> =
            batch.hits.iter().map(|h| h.iter().map(|&(_, id)| id).collect()).collect();
        let recall = recall_batch(&gt, &results, 5);
        prop_assert!(recall >= 0.99, "exhaustive search recall {recall}");
    }

    #[test]
    fn insert_then_delete_restores_results(
        seed in 0u64..500,
    ) {
        let base = world(350, 8, 4, seed);
        let queries = world(4, 8, 4, seed + 3);
        let mut idx = PathWeaverIndex::build(&base, &PathWeaverConfig::test_scale(2)).unwrap();
        let params = SearchParams::default();
        let before = idx.search_pipelined(&queries, &params);
        // Insert a decoy exactly on top of query 0, then tombstone it: the
        // final results must match the original ones.
        let decoy: Vec<f32> = queries.row(0).to_vec();
        let id = idx.insert(&decoy);
        let with_decoy = idx.search_pipelined(&queries, &params);
        prop_assert!(with_decoy.results[0].contains(&id), "decoy not found after insert");
        prop_assert!(idx.delete(id));
        let after = idx.search_pipelined(&queries, &params);
        prop_assert!(!after.results[0].contains(&id), "tombstoned decoy returned");
        // Insertion permanently rewires a few reverse edges, so the graph is
        // not byte-identical afterwards; results must still agree closely.
        prop_assert_eq!(after.results[0][0], before.results[0][0], "top-1 must be stable");
        let b: std::collections::HashSet<u32> = before.results[0].iter().copied().collect();
        let overlap = after.results[0].iter().filter(|id| b.contains(id)).count();
        prop_assert!(overlap + 2 >= before.results[0].len(),
            "results drifted too far: {overlap}/{}", before.results[0].len());
    }
}
