//! System-level invariants of the simulated-GPU substrate — the properties
//! that justify the hardware substitution documented in DESIGN.md.

use pathweaver::gpusim::trace::BreakdownReport;
use pathweaver::prelude::*;

#[test]
fn wider_vectors_lower_simulated_qps() {
    // Fig 8/10's dimensional effect: Wiki-like (768-d) must be far slower
    // than Deep-like (96-d) at similar sizes — the cost model charges
    // bandwidth per vector byte.
    let deep = DatasetProfile::deep10m_like().workload(Scale::Test, 12, 10, 61);
    let wiki = DatasetProfile::wiki_like().workload(Scale::Test, 12, 10, 61);
    let params = SearchParams::default();
    let deep_idx = PathWeaverIndex::build(&deep.base, &PathWeaverConfig::test_scale(1)).unwrap();
    let wiki_idx = PathWeaverIndex::build(&wiki.base, &PathWeaverConfig::test_scale(1)).unwrap();
    let deep_out = deep_idx.search_pipelined(&deep.queries, &params);
    let wiki_out = wiki_idx.search_pipelined(&wiki.queries, &params);
    // Per-distance cost scales with dim (768/96 = 8×); convergence differs,
    // so just require a substantially lower QPS for the wide vectors.
    assert!(
        wiki_out.qps < deep_out.qps / 2.0,
        "wiki {} should be much slower than deep {}",
        wiki_out.qps,
        deep_out.qps
    );
}

#[test]
fn communication_stays_negligible() {
    // §6.4's argument: comm volume is Q×4 bytes per stage; the memory term
    // dwarfs it.
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 24, 10, 62);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(4)).unwrap();
    let out = idx.search_pipelined(&w.queries, &SearchParams::default());
    let counters = out.timeline.aggregate_counters();
    assert!(counters.comm_bytes > 0);
    assert!(
        counters.comm_bytes < counters.vector_bytes / 100,
        "comm {} vs vector bytes {}",
        counters.comm_bytes,
        counters.vector_bytes
    );
}

#[test]
fn makespan_bounded_by_device_seconds() {
    // Lock-step pipelining can never beat perfect parallelism: makespan must
    // lie between (total device time / N) and total device time.
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 24, 10, 63);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(3)).unwrap();
    let out = idx.search_pipelined(&w.queries, &SearchParams::default());
    let total = out.breakdown.total_s();
    assert!(out.makespan_s <= total + 1e-12);
    assert!(out.makespan_s >= total / 3.0 - 1e-12, "makespan {} total {total}", out.makespan_s);
}

#[test]
fn counters_consistent_with_stats() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 12, 10, 64);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    let out = idx.search_pipelined(&w.queries, &SearchParams::default());
    let c = out.timeline.aggregate_counters();
    // Every shard-search visit is a distance computation (ghost-stage
    // distances are counted in the clock but not in shard-search stats, so
    // the counter can only exceed the stats), and vector bytes follow.
    assert!(c.dist_calcs >= out.stats.visits);
    assert_eq!(c.vector_bytes, c.dist_calcs * (idx.dim() as u64) * 4);
    assert!(c.nodes_visited > 0);
    assert!(c.hash_probes >= c.dist_calcs);
}

#[test]
fn breakdown_fractions_are_a_partition() {
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 12, 10, 65);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    let out = idx.search_pipelined(&w.queries, &SearchParams::default());
    let br = BreakdownReport::from_timeline(&out.timeline);
    let sum = br.l2_fraction + br.rest_fraction + br.comm_fraction;
    assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
    assert!(br.total_s > 0.0);
}

#[test]
fn oom_on_undersized_device_is_clean() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 5, 66);
    let mut config = PathWeaverConfig::test_scale(2);
    config.device.mem_capacity = 4096;
    let err = PathWeaverIndex::build(&w.base, &config).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("OOM"), "unexpected message: {msg}");
}
