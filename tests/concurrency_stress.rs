//! Concurrency stress tests over the worker pool and the obs registry's
//! tri-state flags — the dynamic complement to pwlint's static A-rules.
//!
//! These run under the normal harness on every CI pass and are the intended
//! workload for the ThreadSanitizer leg (`tools/check_tsan.sh`): each test
//! drives real cross-thread interleavings (pool work racing flag toggles,
//! snapshots racing recording) and asserts the exactness guarantees that
//! Relaxed-ordering counters must still provide.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pathweaver::core::serve::{ServeConfig, Server, SubmitError};
use pathweaver::obs;
use pathweaver::prelude::*;
use pathweaver::util::{parallel_for, parallel_for_spawning};

/// Tests in this binary toggle the process-global observability flags, so
/// they serialize on one lock (the harness runs tests in parallel).
fn flag_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pool work races rapid flag flips: every gated instrumentation read
/// (`obs::enabled()` / `obs::tracing_enabled()`) interleaves with stores
/// from the toggler thread, while the job's own Relaxed tally must still
/// come out exact — integer addition commutes regardless of schedule.
#[test]
fn pool_work_is_exact_under_flag_toggling() {
    let _g = flag_guard();
    let stop = AtomicU64::new(0);
    let total = AtomicU64::new(0);

    std::thread::scope(|s| {
        s.spawn(|| {
            let mut on = false;
            while stop.load(Ordering::Acquire) == 0 {
                obs::set_enabled(on);
                obs::set_tracing(!on);
                on = !on;
                std::thread::yield_now();
            }
        });

        for round in 0..50u64 {
            let len = 64 + (round as usize % 7) * 33;
            parallel_for(len, |i| {
                // The gated fast path every instrumented call site takes.
                if obs::enabled() {
                    std::hint::black_box(i);
                }
                total.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        }
        stop.store(1, Ordering::Release);
    });

    obs::set_tracing(false);
    obs::set_enabled(false);

    let expected: u64 = (0..50u64)
        .map(|r| {
            let n = 64 + (r % 7) * 33;
            n * (n + 1) / 2
        })
        .sum();
    assert_eq!(total.load(Ordering::Relaxed), expected, "pool dropped or duplicated work");
}

/// Snapshots (including full JSON rendering) race live recording from pool
/// workers; after the pool joins, the registry must hold the exact total.
#[test]
fn snapshots_race_recording_without_losing_updates() {
    let _g = flag_guard();
    obs::set_enabled(true);
    obs::reset();

    let done = AtomicU64::new(0);
    std::thread::scope(|s| {
        s.spawn(|| {
            while done.load(Ordering::Acquire) == 0 {
                let snap = obs::global_snapshot();
                std::hint::black_box(snap.to_json());
                std::thread::yield_now();
            }
        });

        parallel_for_spawning(1000, |i| {
            obs::registry().counter("search.stress.events").add(1);
            obs::registry().histogram("search.stress.sizes").record(i as u64);
        });
        done.store(1, Ordering::Release);
    });

    let snap = obs::global_snapshot();
    obs::set_enabled(false);
    obs::reset();

    assert_eq!(snap.counters["search.stress.events"], 1000);
    assert_eq!(snap.histograms["search.stress.sizes"].count, 1000);
}

/// Concurrent first-touch registration of the same metric names from many
/// pool workers must yield one instance per name (the registry's intern
/// path), never split counts across duplicates.
#[test]
fn concurrent_registration_interns_one_instance_per_name() {
    let _g = flag_guard();
    obs::set_enabled(true);
    obs::reset();

    parallel_for(256, |i| {
        let name = format!("search.stress.shard{}", i % 4);
        obs::registry().counter(&name).add(1);
    });

    let snap = obs::global_snapshot();
    obs::set_enabled(false);
    obs::reset();

    let shard_total: u64 = (0..4).map(|s| snap.counters[&format!("search.stress.shard{s}")]).sum();
    assert_eq!(shard_total, 256, "interning split counts across duplicates");
}

/// The snapshot-isolation stress contract: thousands of streaming inserts
/// and deletes race concurrent serve batches and the background maintainer,
/// and no query may ever observe a torn snapshot. Inserted vectors sit far
/// from every query cluster and deletes only target those inserts, so the
/// pre-built ground truth stays valid throughout — recall@10 must hold its
/// floor on every round, mutations or not, and every ticket must come back
/// answered with sorted, in-range hits.
#[test]
fn mixed_mutations_under_serve_keep_recall_and_never_tear() {
    let _g = flag_guard();
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 10, 10, 61);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    let base_len = w.base.len() as u32;
    let concurrent = Arc::new(ConcurrentIndex::new(idx));
    let maintainer = concurrent.spawn_maintainer(0.3, 2.0).unwrap();

    let config = ServeConfig {
        max_batch: 4,
        flush_interval_ms: 0.2,
        params: SearchParams::default(),
        ..ServeConfig::default()
    };
    let server = Server::new_dynamic(Arc::clone(&concurrent), config).unwrap();

    const WRITERS: usize = 2;
    const INSERTS_PER_WRITER: usize = 900;
    let writes_done = AtomicU64::new(0);
    let answered = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let (concurrent, w) = (&concurrent, &w);
            let writes_done = &writes_done;
            s.spawn(move || {
                let mut minted: Vec<u32> = Vec::with_capacity(INSERTS_PER_WRITER);
                for i in 0..INSERTS_PER_WRITER {
                    // Far outside every query cluster: never cracks a top-10.
                    let far: Vec<f32> = w
                        .base
                        .row((t * INSERTS_PER_WRITER + i) % w.base.len())
                        .iter()
                        .map(|x| x + 40.0 + t as f32)
                        .collect();
                    minted.push(concurrent.insert(&far).unwrap());
                    // Delete roughly half of our own inserts as we go, plus
                    // the occasional no-op double delete — replaying the
                    // same tombstone must stay harmless under concurrency.
                    if i % 2 == 1 {
                        let victim = minted[i - 1];
                        assert!(concurrent.delete(victim).unwrap(), "insert {victim} vanished");
                        if i % 8 == 1 {
                            assert!(!concurrent.delete(victim).unwrap());
                        }
                    }
                }
                writes_done.fetch_add(1, Ordering::Release);
            });
        }

        // Reader: stream serve batches for the whole write phase (and one
        // final quiesced round), checking invariants on every response.
        let (server, w) = (&server, &w);
        let (writes_done, answered) = (&writes_done, &answered);
        s.spawn(move || {
            let mut round = 0u64;
            loop {
                let quiesced = writes_done.load(Ordering::Acquire) == WRITERS as u64;
                let tickets: Vec<_> = (0..w.queries.len())
                    .map(|r| loop {
                        match server.try_submit(w.queries.row(r)) {
                            Ok(ticket) => break ticket,
                            Err(SubmitError::QueueFull) => std::thread::yield_now(),
                            Err(SubmitError::ShuttingDown) => {
                                unreachable!("shutdown begins after readers join")
                            }
                        }
                    })
                    .collect();
                let mut ids = Vec::with_capacity(tickets.len());
                for (q, ticket) in tickets.into_iter().enumerate() {
                    let res = ticket
                        .wait()
                        .unwrap_or_else(|e| panic!("round {round} query {q} failed: {e:?}"));
                    assert!(!res.timed_out, "round {round} query {q} timed out (no deadline set)");
                    assert!(!res.hits.is_empty(), "round {round} query {q}: empty hit list");
                    for pair in res.hits.windows(2) {
                        assert!(
                            pair[0].0 <= pair[1].0,
                            "round {round} query {q}: hits out of order (torn snapshot?)"
                        );
                    }
                    for &(d, _id) in &res.hits {
                        assert!(d.is_finite(), "round {round} query {q}: non-finite distance");
                    }
                    // Far-away inserts must never displace true neighbors.
                    let base_hits: Vec<u32> =
                        res.hits.iter().map(|&(_, id)| id).filter(|&id| id < base_len).collect();
                    ids.push(base_hits);
                    answered.fetch_add(1, Ordering::Relaxed);
                }
                let recall = recall_batch(&w.ground_truth, &ids, 10);
                assert!(
                    recall >= 0.75,
                    "round {round} recall@10 {recall:.3} under streaming mutation"
                );
                round += 1;
                if quiesced {
                    break; // This round ran against the fully-mutated index.
                }
            }
            assert!(round >= 2, "writers outpaced the reader: no overlapped rounds observed");
        });
    });

    server.shutdown();
    maintainer.stop();
    assert!(answered.load(Ordering::Relaxed) >= 2 * w.queries.len() as u64);
    // Every mutation went through: the final snapshot accounts for all
    // minted ids, and nothing the maintainer folded resurrected a tombstone.
    let pinned = concurrent.pin();
    assert_eq!(
        pinned.index().num_vectors,
        w.base.len() + WRITERS * INSERTS_PER_WRITER,
        "inserts lost or duplicated"
    );
    assert!(pinned.version() > 0, "mutations never published a new snapshot");
}

/// Many submitter threads race the serve layer's admission queue —
/// backpressure retries, interval flushes, and overlapped batches — across
/// servers whose deadlines are drawn from a seeded pseudo-random sequence
/// (expired-at-once, tight, comfortable, and none). Every accepted ticket
/// must be answered exactly once, timed out or not.
#[test]
fn serve_survives_concurrent_submitters_with_random_deadlines() {
    let _g = flag_guard();
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 37);
    let idx = Arc::new(PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap());

    const SUBMITTERS: usize = 6;
    const PER_THREAD: usize = 20;
    const BURST: usize = 5;
    for round in 0..4u64 {
        // Deadline budgets (ms) chosen by seeded draw so each run covers the
        // same spread without wall-clock-dependent flakiness.
        let deadline_ms = match pathweaver::util::seed_from_parts(93, "serve-stress", round) % 4 {
            0 => None,
            1 => Some(0.01),
            2 => Some(0.5),
            _ => Some(5.0),
        };
        let config = ServeConfig {
            max_batch: 4,
            flush_interval_ms: 0.2,
            queue_capacity: 8, // Small: submitter bursts must hit QueueFull.
            deadline_ms,
            ..ServeConfig::default()
        };
        let server = Server::new(Arc::clone(&idx), config).unwrap();
        let delivered = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..SUBMITTERS {
                let (server, w, delivered) = (&server, &w, &delivered);
                s.spawn(move || {
                    let mut sent = 0usize;
                    while sent < PER_THREAD {
                        let burst = BURST.min(PER_THREAD - sent);
                        let tickets: Vec<_> = (0..burst)
                            .map(|i| {
                                let row = (t * PER_THREAD + sent + i) % w.queries.len();
                                loop {
                                    match server.try_submit(w.queries.row(row)) {
                                        Ok(ticket) => break ticket,
                                        Err(SubmitError::QueueFull) => std::thread::yield_now(),
                                        Err(SubmitError::ShuttingDown) => {
                                            unreachable!("shutdown begins after submitters join")
                                        }
                                    }
                                }
                            })
                            .collect();
                        sent += burst;
                        for ticket in tickets {
                            let res = ticket.wait().unwrap();
                            if !res.timed_out {
                                assert!(!res.hits.is_empty(), "completed batch with no hits");
                            }
                            delivered.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        server.shutdown();
        assert_eq!(
            delivered.load(Ordering::Relaxed),
            (SUBMITTERS * PER_THREAD) as u64,
            "round {round}: tickets stranded or duplicated"
        );
    }
}
