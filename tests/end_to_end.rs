//! End-to-end integration: dataset synthesis → index build → search →
//! recall evaluation, across every dataset profile and both search modes.

use pathweaver::prelude::*;

fn recall_of(out: &SearchOutput, w: &Workload) -> f64 {
    recall_batch(&w.ground_truth, &out.results, 10)
}

#[test]
fn every_profile_reaches_good_recall_single_device() {
    for profile in DatasetProfile::all() {
        let w = profile.workload(Scale::Test, 10, 10, 31);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(1)).unwrap();
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        let recall = recall_of(&out, &w);
        assert!(recall >= 0.8, "{}: recall {recall}", profile.name);
    }
}

#[test]
fn multi_device_modes_agree_on_quality() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 16, 10, 32);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(4)).unwrap();
    let params = SearchParams::default();
    let naive = idx.search_naive(&w.queries, &params);
    let piped = idx.search_pipelined(&w.queries, &params);
    let rn = recall_of(&naive, &w);
    let rp = recall_of(&piped, &w);
    assert!(rn > 0.8, "naive recall {rn}");
    assert!(rp > 0.8, "pipelined recall {rp}");
    // Pipelining must save distance work.
    let dn = naive.timeline.aggregate_counters().dist_calcs;
    let dp = piped.timeline.aggregate_counters().dist_calcs;
    assert!(dp < dn, "pipelined {dp} vs naive {dn}");
}

#[test]
fn dgs_saves_work_with_negligible_recall_loss() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 16, 10, 33);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(1)).unwrap();
    let exact = SearchParams { max_iterations: 24, ..SearchParams::default() };
    let dgs = SearchParams { dgs: Some(DgsParams::default()), ..exact };
    let out_exact = idx.search_pipelined(&w.queries, &exact);
    let out_dgs = idx.search_pipelined(&w.queries, &dgs);
    let r_exact = recall_of(&out_exact, &w);
    let r_dgs = recall_of(&out_dgs, &w);
    assert!(r_exact - r_dgs <= 0.08, "DGS recall drop too large: {r_exact} -> {r_dgs}");
    let d_exact = out_exact.timeline.aggregate_counters().dist_calcs;
    let d_dgs = out_dgs.timeline.aggregate_counters().dist_calcs;
    assert!(d_dgs < d_exact, "DGS should reduce distance work: {d_dgs} vs {d_exact}");
}

#[test]
fn results_are_deterministic_across_runs() {
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 12, 10, 34);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    let params = SearchParams::default();
    let a = idx.search_pipelined(&w.queries, &params);
    let b = idx.search_pipelined(&w.queries, &params);
    assert_eq!(a.results, b.results);
    assert_eq!(
        a.timeline.aggregate_counters().dist_calcs,
        b.timeline.aggregate_counters().dist_calcs
    );
}

#[test]
fn uniform_data_still_searchable() {
    // The structure-free stress case.
    use pathweaver::datasets::{brute_force_knn, Distribution, SyntheticSpec};
    let base = SyntheticSpec { dim: 24, len: 900, distribution: Distribution::Uniform, seed: 77 }
        .generate();
    let queries = SyntheticSpec { dim: 24, len: 12, distribution: Distribution::Uniform, seed: 78 }
        .generate();
    let gt = brute_force_knn(&base, &queries, 10);
    let idx = PathWeaverIndex::build(&base, &PathWeaverConfig::test_scale(2)).unwrap();
    let out = idx.search_pipelined(&queries, &SearchParams::default());
    let recall = recall_batch(&gt, &out.results, 10);
    assert!(recall > 0.6, "uniform-data recall {recall}");
}

#[test]
fn larger_k_and_beam_work() {
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 50, 35);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    let params = SearchParams { k: 50, beam: 128, candidates: 128, ..SearchParams::default() };
    let out = idx.search_pipelined(&w.queries, &params);
    assert!(out.results.iter().all(|r| r.len() == 50));
    let recall = recall_batch(&w.ground_truth, &out.results, 50);
    assert!(recall > 0.7, "recall@50 {recall}");
}
