//! Persistence-centric integration flows: save/load through the index
//! store combined with dynamic updates and continued searching — the
//! lifecycle a deployment would actually run.

mod common;

use common::TempStore;
use pathweaver::core::store::{is_segment_store, load_index, save_index};
use pathweaver::prelude::*;

#[test]
fn save_update_save_load_keeps_working() {
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 91);
    let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    let dir = TempStore::new("lifecycle");

    // Save the fresh index, reload, mutate the reloaded copy.
    save_index(&idx, dir.path()).unwrap();
    let mut reloaded = load_index(dir.path()).unwrap();
    let novel: Vec<f32> = w.base.row(3).iter().map(|x| x + 0.005).collect();
    let new_id = reloaded.insert(&novel);
    assert!(reloaded.delete(w.base.len() as u32 / 2));

    // Save the mutated index over the first snapshot and reload again.
    save_index(&reloaded, dir.path()).unwrap();
    let third = load_index(dir.path()).unwrap();
    assert_eq!(third.num_vectors, reloaded.num_vectors);
    assert_eq!(third.live_vectors(), reloaded.live_vectors());

    let mut queries = pathweaver::vector::VectorSet::empty(third.dim());
    queries.push(&novel);
    let out = third.search_pipelined(&queries, &SearchParams::default());
    assert!(out.results[0].contains(&new_id), "insert lost across save/load");

    // The original in-memory index is untouched by all of this.
    let out0 = idx.search_pipelined(&w.queries, &SearchParams::default());
    assert_eq!(out0.results.len(), w.queries.len());
    idx.insert(&novel); // Still mutable and consistent.
}

#[test]
fn maintain_then_save_load_searches_identically() {
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 92);
    let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
    let victims: Vec<u32> =
        idx.shards[0].global_ids.iter().copied().step_by(2).take(idx.shards[0].len() / 2).collect();
    for &g in &victims {
        idx.delete(g);
    }
    assert_eq!(idx.maintain(0.3).unwrap(), 1);
    let dir = TempStore::new("maintain");
    save_index(&idx, dir.path()).unwrap();
    let loaded = load_index(dir.path()).unwrap();
    let params = SearchParams::default();
    let a = idx.search_pipelined(&w.queries, &params);
    let b = loaded.search_pipelined(&w.queries, &params);
    assert_eq!(a.results, b.results);
    for hits in &b.results {
        for id in hits {
            assert!(!victims.contains(id));
        }
    }
}

#[test]
fn single_device_index_roundtrips_without_intershard() {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 5, 93);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(1)).unwrap();
    let dir = TempStore::new("single");
    save_index(&idx, dir.path()).unwrap();
    assert!(is_segment_store(dir.path()), "save_index writes the segment format");
    let loaded = load_index(dir.path()).unwrap();
    assert!(loaded.shards[0].intershard.is_none());
    assert!(loaded.shards[0].ghost.is_some());
    let out = loaded.search_pipelined(&w.queries, &SearchParams::default());
    assert_eq!(out.results.len(), 4);
}
