//! Integration tests for the multi-node cluster layer.
//!
//! The two contracts under test:
//!
//! 1. **Identity** — a 1-node cluster returns hits bit-identical to
//!    `serve_once` (and hence `search_pipelined`) on the same batch, for any
//!    placement the consistent-hash ring produces; multi-partition clusters
//!    match the per-partition reference merge bitwise.
//! 2. **Liveness under faults** — replica crashes, torn frames, and timeout
//!    storms never fail an in-flight query while any sibling replica lives;
//!    the router's health view tracks the faults and health probes revive
//!    recovered replicas.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use pathweaver::core::cluster::{
    build_partitions, reference_merged, ClusterError, ClusterPartition, DelayWindow, FaultScript,
    LocalCluster, TransportKind,
};
use pathweaver::core::reduce::{reduce_hits, reduce_partitions};
use pathweaver::core::serve::serve_once;
use pathweaver::prelude::*;
use proptest::prelude::*;

/// Shared workload + prebuilt partitions so every test case boots clusters
/// without repaying index construction.
struct World {
    workload: Workload,
    /// Full-collection index (the single-node reference).
    full: Vec<ClusterPartition>,
    /// The same collection split in two.
    halves: Vec<ClusterPartition>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let workload = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 23);
        let config = PathWeaverConfig::test_scale(2);
        let full = build_partitions(&workload.base, &config, 1).unwrap();
        let halves = build_partitions(&workload.base, &config, 2).unwrap();
        World { workload, full, halves }
    })
}

fn assert_hits_identical(a: &[Vec<(f32, u32)>], b: &[Vec<(f32, u32)>], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: query count");
    for (q, (ha, hb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ha.len(), hb.len(), "{label}: query {q} hit count");
        for (rank, (&(da, ia), &(db, ib))) in ha.iter().zip(hb).enumerate() {
            assert_eq!(ia, ib, "{label}: query {q} rank {rank} id");
            assert_eq!(da.to_bits(), db.to_bits(), "{label}: query {q} rank {rank} distance");
        }
    }
}

fn cluster_config(partitions: usize, replication: usize) -> ClusterConfig {
    ClusterConfig { partitions, replication, request_timeout_ms: 4_000, ..ClusterConfig::default() }
}

#[test]
fn one_node_cluster_is_bit_identical_to_serve_once() {
    let w = world();
    let cluster = LocalCluster::launch_with_partitions(
        &w.full,
        &cluster_config(1, 1),
        1,
        TransportKind::Channel,
        &[],
    )
    .unwrap();
    let params = SearchParams::default();
    let out = cluster.router().search(&w.workload.queries, &params).unwrap();
    let reference = serve_once(&w.full[0].index, &w.workload.queries, &params).unwrap();
    assert_hits_identical(&out.hits, &reference.hits, "1-node channel cluster");
    assert_eq!(out.results, reference.results, "result id projection");
    assert_eq!(
        out.makespan_s.to_bits(),
        reference.makespan_s.to_bits(),
        "simulated makespan must survive the wire exactly"
    );
    let direct = w.full[0].index.search_pipelined(&w.workload.queries, &params);
    assert_hits_identical(&out.hits, &direct.hits, "cluster vs search_pipelined");
    cluster.shutdown();
}

#[test]
fn tcp_transport_is_bit_identical_too() {
    let w = world();
    let cluster = LocalCluster::launch_with_partitions(
        &w.full,
        &cluster_config(1, 1),
        1,
        TransportKind::Tcp,
        &[],
    )
    .unwrap();
    let params = SearchParams::default();
    let out = cluster.router().search(&w.workload.queries, &params).unwrap();
    let reference = serve_once(&w.full[0].index, &w.workload.queries, &params).unwrap();
    assert_hits_identical(&out.hits, &reference.hits, "1-node tcp cluster");
    cluster.shutdown();
}

#[test]
fn multi_partition_cluster_matches_reference_merge() {
    let w = world();
    let params = SearchParams::default();
    let reference = reference_merged(&w.halves, &w.workload.queries, &params).unwrap();
    for (nodes, replication) in [(2usize, 1usize), (3, 2), (4, 2)] {
        let cluster = LocalCluster::launch_with_partitions(
            &w.halves,
            &cluster_config(2, replication),
            nodes,
            TransportKind::Channel,
            &[],
        )
        .unwrap();
        let out = cluster.router().search(&w.workload.queries, &params).unwrap();
        let label = format!("{nodes} nodes, {replication}x replication");
        assert_hits_identical(&out.hits, &reference, &label);
        cluster.shutdown();
    }
}

#[test]
fn replica_kill_mid_batch_fails_over_without_losing_queries() {
    let w = world();
    let params = SearchParams::default();
    let reference = serve_once(&w.full[0].index, &w.workload.queries, &params).unwrap();
    // Both nodes hold the single partition; node 0 swallows its first
    // request and dies.
    let faults = vec![
        FaultScript { crash_after_requests: Some(0), ..FaultScript::default() },
        FaultScript::default(),
    ];
    let cluster = LocalCluster::launch_with_partitions(
        &w.full,
        &cluster_config(1, 2),
        2,
        TransportKind::Channel,
        &faults,
    )
    .unwrap();
    let mut failovers = 0;
    for batch in 0..3 {
        let out = cluster.router().search(&w.workload.queries, &params).unwrap();
        assert_hits_identical(&out.hits, &reference.hits, &format!("batch {batch}"));
        failovers += out.failovers;
    }
    assert!(failovers >= 1, "the dead replica must have been failed over at least once");
    assert!(cluster.nodes()[0].is_crashed(), "fault script should have tripped");
    assert_eq!(cluster.router().alive(), vec![false, true], "health view tracks the crash");
    cluster.shutdown();
}

#[test]
fn torn_frame_retries_on_sibling_and_health_probe_revives() {
    let w = world();
    let params = SearchParams::default();
    let reference = serve_once(&w.full[0].index, &w.workload.queries, &params).unwrap();
    // Node 0 tears exactly its first response, then behaves.
    let faults = vec![
        FaultScript { torn_responses: BTreeSet::from([0]), ..FaultScript::default() },
        FaultScript::default(),
    ];
    let cluster = LocalCluster::launch_with_partitions(
        &w.full,
        &cluster_config(1, 2),
        2,
        TransportKind::Channel,
        &faults,
    )
    .unwrap();
    let mut saw_failover = false;
    for batch in 0..3 {
        let out = cluster.router().search(&w.workload.queries, &params).unwrap();
        assert_hits_identical(&out.hits, &reference.hits, &format!("batch {batch}"));
        saw_failover |= out.failovers > 0;
    }
    assert!(saw_failover, "the torn frame must have forced a sibling retry");
    // The node recovered after its scripted tear; a probe revives it.
    assert_eq!(cluster.router().check_health(), 2, "both nodes answer pings");
    assert_eq!(cluster.router().alive(), vec![true, true]);
    cluster.shutdown();
}

#[test]
fn timeout_storm_fails_over_within_budget() {
    let w = world();
    let params = SearchParams::default();
    let reference = serve_once(&w.full[0].index, &w.workload.queries, &params).unwrap();
    // Node 0 answers every request 400 ms late against a 60 ms budget.
    let faults = vec![
        FaultScript {
            delay: Some(DelayWindow { from: 0, to: u64::MAX, delay_ms: 400 }),
            ..FaultScript::default()
        },
        FaultScript::default(),
    ];
    let config = ClusterConfig { request_timeout_ms: 60, ..cluster_config(1, 2) };
    let cluster =
        LocalCluster::launch_with_partitions(&w.full, &config, 2, TransportKind::Channel, &faults)
            .unwrap();
    for batch in 0..2 {
        let out = cluster.router().search(&w.workload.queries, &params).unwrap();
        assert_hits_identical(&out.hits, &reference.hits, &format!("batch {batch}"));
    }
    assert!(!cluster.router().alive()[0], "the slow replica must be marked dead after timing out");
    cluster.shutdown();
}

#[test]
fn unavailable_partition_is_an_error_not_a_wrong_answer() {
    let w = world();
    let params = SearchParams::default();
    let faults = vec![FaultScript { crash_after_requests: Some(0), ..FaultScript::default() }];
    let config = ClusterConfig { request_timeout_ms: 100, ..cluster_config(1, 1) };
    let cluster =
        LocalCluster::launch_with_partitions(&w.full, &config, 1, TransportKind::Channel, &faults)
            .unwrap();
    let err = cluster.router().search(&w.workload.queries, &params).unwrap_err();
    let ClusterError::PartitionUnavailable { partition, attempts } = err else {
        panic!("expected PartitionUnavailable, got {err}");
    };
    assert_eq!(partition, 0);
    assert!(!attempts.is_empty(), "the error must report what was tried");
    cluster.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Satellite contract: the router's gather over *any* placement the
    /// ring produces (nodes × replication × placement seed) is bit-identical
    /// to single-node `search_pipelined` for a 1-partition collection.
    #[test]
    fn any_placement_is_bit_identical_to_search_pipelined(
        nodes in 1usize..5,
        replication in 1usize..4,
        seed in 0u64..1000,
    ) {
        let w = world();
        let config = ClusterConfig { seed, ..cluster_config(1, replication) };
        let cluster = LocalCluster::launch_with_partitions(
            &w.full, &config, nodes, TransportKind::Channel, &[],
        )
        .unwrap();
        let params = SearchParams::default();
        let direct = w.full[0].index.search_pipelined(&w.workload.queries, &params);
        // Several batches so the rotating replica choice actually lands on
        // different nodes; every one must agree with the direct search.
        for _ in 0..3 {
            let out = cluster.router().search(&w.workload.queries, &params).unwrap();
            prop_assert_eq!(&out.hits, &direct.hits);
            prop_assert_eq!(&out.results, &direct.results);
        }
        cluster.shutdown();
    }

    /// Replicas of a partition answer with identical hit lists; a failover
    /// race can therefore present the same partition's list twice. The
    /// merge must be invariant to such duplication, for arbitrary lists.
    #[test]
    fn duplicate_replica_answers_never_change_the_merge(
        seed in 0u64..10_000,
        partitions in 1usize..4,
        queries in 1usize..5,
        k in 1usize..8,
    ) {
        let mut rng = seed;
        let mut next = move || {
            // SplitMix64-ish scramble, enough for test data.
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng
        };
        let per_partition: Vec<Vec<Vec<(f32, u32)>>> = (0..partitions)
            .map(|p| {
                (0..queries)
                    .map(|_| {
                        let n = (next() % 6) as usize;
                        let mut hits: Vec<(f32, u32)> = (0..n)
                            .map(|_| {
                                // Coarse grid distances force ties across
                                // partitions; ids overlap across partitions
                                // to exercise dedup.
                                let d = (next() % 8) as f32 * 0.25;
                                let id = (next() % 32) as u32 + p as u32 * 8;
                                (d, id)
                            })
                            .collect();
                        hits = reduce_hits(&[hits], k);
                        hits
                    })
                    .collect()
            })
            .collect();
        let merged = reduce_partitions(&per_partition, k);
        // Duplicate every partition's answer (worst-case failover race).
        let mut doubled = per_partition.clone();
        doubled.extend(per_partition.iter().cloned());
        prop_assert_eq!(&reduce_partitions(&doubled, k), &merged);
        // And merging is idempotent: feeding the merged answer back as a
        // single partition reproduces it bitwise.
        prop_assert_eq!(&reduce_partitions(std::slice::from_ref(&merged), k), &merged);
    }
}
