//! Vendored offline shim for the `crossbeam` API surface this workspace
//! uses.
//!
//! Only `crossbeam::channel::{bounded, unbounded}` are needed (the ring
//! pipeline executor). They are implemented over `std::sync::mpsc`, whose
//! `sync_channel`/`channel` pair has the same blocking semantics for the
//! single-consumer topology the executor builds (cloneable senders, one
//! receiver per ring edge).

pub mod channel {
    //! Multi-producer single-consumer channels with cloneable senders.

    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Sending half of a channel; cloneable.
    pub enum Sender<T> {
        /// Capacity-bounded sender (blocks when full).
        Bounded(mpsc::SyncSender<T>),
        /// Unbounded sender.
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Self::Bounded(s) => Self::Bounded(s.clone()),
                Self::Unbounded(s) => Self::Unbounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value if the receiving side has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Self::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Self::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// Fails once the channel is empty and every sender has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a value if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }

        /// Iterates over received values until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Creates a channel that holds at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_order_preserved() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_then_delivers() {
        let (tx, rx) = channel::bounded(1);
        std::thread::scope(|s| {
            s.spawn(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(rx.recv().is_err());
        });
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1u8).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let mut got: Vec<u8> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
