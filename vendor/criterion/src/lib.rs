//! Vendored offline shim for the `criterion` API surface this workspace
//! uses.
//!
//! Provides `Criterion`, benchmark groups with the tuning setters the bench
//! files call, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple warm-up + timed-batch loop that prints a
//! mean ns/iter line per benchmark — enough to compare kernels locally and
//! to keep `--benches` targets compiling and runnable without crates.io
//! access (no statistical analysis, plots, or baselines).

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Parses CLI arguments. This shim accepts and ignores them (including
    /// the bench filter), so `cargo bench` invocations don't error.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = (self.sample_size, self.measurement_time, self.warm_up_time);
        run_one(&name.into(), cfg, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the per-benchmark warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, (self.sample_size, self.measurement_time, self.warm_up_time), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Calibrate a batch size so one batch is ~1ms, then time batches.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 24 {
                self.total += dt;
                self.iters += batch;
                break;
            }
            batch *= 8;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, cfg: (usize, Duration, Duration), f: &mut F) {
    let (samples, measurement, warm_up) = cfg;
    // Warm-up: run untimed batches until the budget elapses.
    let w0 = Instant::now();
    while w0.elapsed() < warm_up {
        let mut b = Bencher::default();
        f(&mut b);
        if b.iters == 0 {
            break;
        }
    }
    // Timed samples, bounded by both sample count and wall-clock budget.
    let mut b = Bencher::default();
    let m0 = Instant::now();
    for _ in 0..samples {
        f(&mut b);
        if m0.elapsed() >= measurement {
            break;
        }
    }
    if b.iters > 0 {
        let ns = b.total.as_nanos() as f64 / b.iters as f64;
        println!("bench {name:<48} {ns:>14.1} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {name:<48} (no iterations recorded)");
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.measurement_time(Duration::from_millis(5));
        g.warm_up_time(Duration::from_millis(1));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, work);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(b.iters > 0);
    }
}
