//! Vendored offline shim for the `bytes` API surface this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of `bytes` the (de)serializers need: the [`Buf`] reader trait for
//! `&[u8]` cursors and the [`BufMut`] writer trait for `Vec<u8>`, with the
//! fixed-width little-endian accessors used by the framed binary formats.

/// Sequential reader over a byte cursor.
///
/// Implemented for `&[u8]`; every `get_*` consumes from the front, so a
/// `&mut &[u8]` advances through the slice exactly like `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out of the cursor, advancing it.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Returns true while at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential writer appending to a growable buffer.
///
/// Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i32_le(-12345);
        buf.put_f32_le(1.5);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f64_le(-2.25);
        let mut cur = &buf[..];
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 513);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_i32_le(), -12345);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert_eq!(cur.get_u64_le(), u64::MAX - 3);
        assert_eq!(cur.get_f64_le(), -2.25);
        assert_eq!(cur.remaining(), 0);
        assert!(!cur.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
