//! Vendored offline shim for the `serde` API surface this workspace uses.
//!
//! The real serde's serializer/deserializer abstraction is far larger than
//! this workspace needs: every consumer here serializes plain data structs to
//! JSON via `serde_json`. This shim therefore collapses the data model to a
//! single JSON-shaped [`Value`] tree: [`Serialize`] renders into a `Value`,
//! [`Deserialize`] reads back out of one, and the companion `serde_derive`
//! crate generates both impls for field-named structs and for enums with
//! unit/struct/tuple variants (externally tagged, like serde's default).
//!
//! Derived code and `serde_json` are the only intended consumers of these
//! traits; application code in the workspace just writes
//! `#[derive(Serialize, Deserialize)]` exactly as with the real crate.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped tree: the single data model of this shim.
///
/// Object fields keep insertion order (a `Vec` of pairs, not a map), so
/// serialized output lists struct fields in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number. All numerics funnel through `f64`, which is exact for
    /// every integer this workspace serializes (|x| < 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved field order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => find(fields, key),
            _ => None,
        }
    }

    /// Returns the number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the array elements.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object fields as an ordered slice of pairs.
    pub fn as_object_slice(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Indexes into an object by key, mirroring `serde_json`'s semantics:
    /// a missing key (or a non-object receiver) yields `Value::Null` rather
    /// than panicking.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Field lookup over an ordered object body (used by derived code).
#[doc(hidden)]
pub fn __find<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    find(fields, key)
}

fn find<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Error raised when a [`Value`] cannot be read back as the requested type.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Rendering into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a JSON-shaped tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a JSON-shaped tree.
    ///
    /// # Errors
    ///
    /// Fails when the tree's shape or types don't match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent.
    ///
    /// The default errors; `Option<T>` overrides it to produce `None`, which
    /// gives the usual "missing field means `None`" behavior.
    ///
    /// # Errors
    ///
    /// Fails for every type that has no natural default.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::msg(format!("missing field `{field}`")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty => $signed:literal),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::msg("expected number"))?;
                if n.fract() != 0.0 {
                    return Err(Error::msg(format!("expected integer, got {n}")));
                }
                if !$signed && n < 0.0 {
                    return Err(Error::msg(format!("expected unsigned integer, got {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::msg(format!("integer {n} out of range")));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_serde_int!(
    u8 => false, u16 => false, u32 => false, u64 => false, usize => false,
    i8 => true, i16 => true, i32 => true, i64 => true, isize => true
);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|n| n as f32).ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::msg(format!(
                        "expected {want}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object_slice()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (HashMap iteration order varies).
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object_slice()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn negative_into_unsigned_fails() {
        assert!(u32::from_value(&Value::Num(-1.0)).is_err());
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![(1.5f32, 7u32), (2.5, 9)];
        let back: Vec<(f32, u32)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_semantics() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::Num(3.0)).unwrap(), Some(3));
        assert_eq!(Option::<u32>::missing_field("x").unwrap(), None);
        assert!(u32::missing_field("x").is_err());
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Num(1.0)), ("b".into(), Value::Bool(true))]);
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert!(v.get("c").is_none());
    }
}
