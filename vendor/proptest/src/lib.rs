//! Vendored offline shim for the `proptest` API surface this workspace uses.
//!
//! Implements the `proptest!` test macro over a tiny [`Strategy`] trait:
//! numeric half-open ranges, tuples of strategies, `collection::vec`, and
//! `bool::ANY`, plus `prop_assert!`/`prop_assert_eq!` and a `ProptestConfig`
//! with a `cases` knob. Inputs are drawn from a deterministic per-test
//! generator (seeded from the test name and case index), so failures
//! reproduce; there is no shrinking — the failing arguments are printed
//! as sampled.

use std::fmt::Debug;
use std::ops::Range;

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused by this shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_shrink_iters: 0 }
    }
}

/// Deterministic sample source handed to strategies (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one named test case.
    pub fn new(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty sampling bound");
        (self.next_u64() % bound as u64) as usize
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                let off = rng.next_u64() % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                self.len.start + rng.index(self.len.end - self.len.start)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Failure raised by `prop_assert!`-style macros; aborts the current case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a rejection message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::new(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __args = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                        $(&$arg),*
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\nwith arguments:\n{}",
                            stringify!($name), __case, __config.cases, e, __args
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn tuples_and_bools(pair in (0usize..8, crate::bool::ANY)) {
            let (i, b) = pair;
            prop_assert!(i < 8);
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::TestRng::new("t", 3);
        let mut b = crate::TestRng::new("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::new("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn failing_case_panics_with_args() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 200, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }
}
