//! Vendored offline shim for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! deterministic, dependency-free replacements for the pieces the workspace
//! imports: [`Rng::gen_range`]/[`Rng::gen`], [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, the same generator
//! family the real crate uses), and [`seq::SliceRandom::shuffle`].
//!
//! Streams are NOT bit-compatible with the real `rand` crate; every consumer
//! in this workspace treats the generator as an opaque seeded source, so only
//! determinism-per-seed matters.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(range, self)
    }

    /// Samples a value of type `T` from its full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one sample from `range` using `rng`.
    fn sample_in<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                // Widening to u64 handles the full signed span without
                // overflow; modulo bias is negligible for the spans used
                // here (all far below 2^63) and irrelevant to correctness.
                let span = (range.end as i128 - range.start as i128) as u128 as u64;
                let off = rng.next_u64() % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_in<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Types drawable from their "standard" full-width distribution via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand a 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `rand::prelude`.
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let d = rng.gen_range(f64::EPSILON..1.0);
            assert!(d > 0.0 && d < 1.0);
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn gen_full_width() {
        let mut rng = SmallRng::seed_from_u64(11);
        let a = rng.gen::<u64>();
        let b = rng.gen::<u64>();
        assert_ne!(a, b);
        let f = rng.gen::<f64>();
        assert!((0.0..1.0).contains(&f));
    }
}
