//! Vendored offline `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! implementations for the vendored serde shim.
//!
//! Because the build environment cannot fetch `syn`/`quote`, the item is
//! parsed directly from the `proc_macro::TokenStream`: enough of Rust's item
//! grammar to cover what this workspace derives on — non-generic structs
//! with named fields, tuple/unit structs, and enums with unit, struct, or
//! tuple variants. Anything fancier (generics, `#[serde(...)]` attributes)
//! is rejected with a compile error naming this file, so failures are loud
//! and local rather than silently wrong.
//!
//! Generated code targets the shim's single-`Value` data model:
//! `Serialize::to_value` builds a JSON-shaped tree and
//! `Deserialize::from_value` reads one back (externally tagged enums,
//! missing-field hook for `Option`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error macro parses"),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes, visibility, and doc comments preceding the keyword.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Optional pub(...) restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => {
                return Err(format!("unexpected token before struct/enum: {other}"));
            }
            None => return Err("no struct or enum found".into()),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!("vendored serde_derive does not support generic type `{name}`"));
        }
    }

    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Item::Struct { name, fields: named_fields(g.stream())? })
            } else {
                Ok(Item::Enum { name, variants: enum_variants(g.stream())? })
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Ok(Item::TupleStruct { name, arity: count_top_level(g.stream()) })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => {
            Ok(Item::UnitStruct { name })
        }
        other => Err(format!("unsupported {kind} body for `{name}`: {other:?}")),
    }
}

/// Splits a token stream on commas that sit outside `<...>` nesting, handing
/// each chunk to `f`. Group tokens (parens/brackets/braces) are opaque, so
/// only angle brackets need explicit depth tracking; `->` is skipped so the
/// `>` of a return arrow can't unbalance the count.
fn split_top_level(
    stream: TokenStream,
    mut f: impl FnMut(&[TokenTree]) -> Result<(), String>,
) -> Result<(), String> {
    let mut chunk: Vec<TokenTree> = Vec::new();
    let mut angle = 0usize;
    let mut prev_dash = false;
    for tt in stream {
        let dash = matches!(&tt, TokenTree::Punct(p) if p.as_char() == '-');
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !chunk.is_empty() {
                    f(&chunk)?;
                    chunk.clear();
                }
                prev_dash = false;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => {
                angle = angle.saturating_sub(1);
            }
            _ => {}
        }
        prev_dash = dash;
        chunk.push(tt);
    }
    if !chunk.is_empty() {
        f(&chunk)?;
    }
    Ok(())
}

fn count_top_level(stream: TokenStream) -> usize {
    let mut n = 0;
    let _ = split_top_level(stream, |_| {
        n += 1;
        Ok(())
    });
    n
}

/// Strips leading attributes and visibility from a field/variant chunk.
fn strip_meta(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [...]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &chunk[i..]
}

fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    split_top_level(stream, |chunk| {
        let rest = strip_meta(chunk);
        match (rest.first(), rest.get(1)) {
            (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                fields.push(id.to_string());
                Ok(())
            }
            _ => Err(format!("cannot read field name from `{}`", tokens_to_string(rest))),
        }
    })?;
    Ok(fields)
}

fn enum_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    split_top_level(stream, |chunk| {
        let rest = strip_meta(chunk);
        let name = match rest.first() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err(format!("cannot read variant from `{}`", tokens_to_string(rest))),
        };
        let kind = match rest.get(1) {
            None => VariantKind::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Named(named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_top_level(g.stream()))
            }
            Some(other) => {
                return Err(format!("unsupported variant syntax after `{name}`: {other}"));
            }
        };
        variants.push(Variant { name, kind });
        Ok(())
    })?;
    Ok(variants)
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(__fields)\n\
                   }}\n\
                 }}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}\n"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: String =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i}),")).collect();
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                format!("::serde::Value::Array(vec![{elems}])")
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                        ),
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.push(({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f})));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                   let mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                   {pushes}\
                                   ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(__inner))])\n\
                                 }}\n"
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let bind_list = binds.join(", ");
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let elems: String = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{elems}])")
                            };
                            format!(
                                "{name}::{vname}({bind_list}) => \
                                 ::serde::Value::Object(vec![({vname:?}.to_string(), {payload})]),\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let reads: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match ::serde::__find(__obj, {f:?}) {{\n\
                           ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                           ::std::option::Option::None => ::serde::Deserialize::missing_field({f:?})?,\n\
                         }},\n"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let __obj = __v.as_object_slice().ok_or_else(|| \
                       ::serde::Error::msg(concat!(\"expected object for struct \", stringify!({name}))))?;\n\
                     ::std::result::Result::Ok({name} {{\n{reads}}})\n\
                   }}\n\
                 }}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
               fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name})\n\
               }}\n\
             }}\n"
        ),
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let reads: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                    .collect();
                format!(
                    "let __items = __v.as_array().ok_or_else(|| \
                       ::serde::Error::msg(\"expected array for tuple struct\"))?;\n\
                     if __items.len() != {arity} {{\n\
                       return ::std::result::Result::Err(::serde::Error::msg(\"tuple struct arity mismatch\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({reads}))"
                )
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     {body}\n\
                   }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => return ::std::result::Result::Ok({name}::{vname}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let reads: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: match ::serde::__find(__inner, {f:?}) {{\n\
                                           ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                                           ::std::option::Option::None => ::serde::Deserialize::missing_field({f:?})?,\n\
                                         }},\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                   let __inner = __payload.as_object_slice().ok_or_else(|| \
                                     ::serde::Error::msg(\"expected object payload\"))?;\n\
                                   return ::std::result::Result::Ok({name}::{vname} {{\n{reads}}});\n\
                                 }}\n"
                            ))
                        }
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!(
                                    "return ::std::result::Result::Ok({name}::{vname}(\
                                     ::serde::Deserialize::from_value(__payload)?));"
                                )
                            } else {
                                let reads: String = (0..*arity)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&__items[{i}])?,")
                                    })
                                    .collect();
                                format!(
                                    "let __items = __payload.as_array().ok_or_else(|| \
                                       ::serde::Error::msg(\"expected array payload\"))?;\n\
                                     if __items.len() != {arity} {{\n\
                                       return ::std::result::Result::Err(::serde::Error::msg(\"variant arity mismatch\"));\n\
                                     }}\n\
                                     return ::std::result::Result::Ok({name}::{vname}({reads}));"
                                )
                            };
                            Some(format!("{vname:?} => {{ {body} }}\n"))
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     if let ::std::option::Option::Some(__tag) = __v.as_str() {{\n\
                       match __tag {{\n{unit_arms}\
                         _ => return ::std::result::Result::Err(::serde::Error::msg(\
                           format!(\"unknown variant `{{}}` of {name}\", __tag))),\n\
                       }}\n\
                     }}\n\
                     if let ::std::option::Option::Some(__fields) = __v.as_object_slice() {{\n\
                       if __fields.len() == 1 {{\n\
                         let (__tag, __payload) = &__fields[0];\n\
                         match __tag.as_str() {{\n{tagged_arms}\
                           _ => return ::std::result::Result::Err(::serde::Error::msg(\
                             format!(\"unknown variant `{{}}` of {name}\", __tag))),\n\
                         }}\n\
                       }}\n\
                     }}\n\
                     ::std::result::Result::Err(::serde::Error::msg(concat!(\
                       \"expected enum \", stringify!({name}))))\n\
                   }}\n\
                 }}\n"
            )
        }
    }
}
