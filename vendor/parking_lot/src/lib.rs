//! Vendored offline shim for the `parking_lot` API surface this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `parking_lot` cannot be fetched. This crate re-implements the small slice
//! of its API the workspace needs (`Mutex`, `RwLock`, `Condvar` with
//! non-poisoning guards) on top of `std::sync`. Poisoned std locks are
//! recovered transparently, matching parking_lot's "no poisoning" semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock` returns a guard directly (no
/// `Result`), mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// move it out while re-parking the thread.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`], mirroring
/// `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses, releasing the guard's
    /// lock while parked. Mirrors `parking_lot::Condvar::wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed,
/// mirroring `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let woke = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
                woke.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            *m.lock() = true;
            cv.notify_all();
        });
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g); // The guard must still hold the lock after the timeout.
        assert!(m.try_lock().is_some());
    }
}
