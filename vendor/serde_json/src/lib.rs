//! Vendored offline shim for the `serde_json` API surface this workspace
//! uses: `to_value`, `from_str`, `to_string`, `to_string_pretty`, the
//! [`json!`] macro, and [`Value`] (re-exported from the vendored serde shim,
//! whose entire data model is already the JSON tree).
//!
//! The text layer is a straightforward recursive-descent parser and printer.
//! Numbers travel as `f64` (exact for |x| < 2^53, which covers every counter
//! this workspace serializes); non-finite floats print as `null`, matching
//! the real crate's refusal to emit `NaN`/`Infinity` as numbers.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Renders any serializable value into a JSON tree.
///
/// # Errors
///
/// Infallible in this shim (kept as `Result` for source compatibility).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from a JSON tree.
///
/// # Errors
///
/// Fails when the tree's shape doesn't match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible in this shim.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes to human-readable JSON text (2-space indent).
///
/// # Errors
///
/// Infallible in this shim.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Builds a [`Value`] from a JSON-looking literal.
///
/// Supports `null`, array literals, flat object literals with string-literal
/// keys, and plain expressions (serialized via [`to_value`]). Nested object
/// literals inside values are intentionally unsupported — build them with
/// nested `json!` calls bound to locals instead.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

// ---------------------------------------------------------------- printing

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        // Integral and exactly representable: print without the ".0" so
        // counters and ids read (and re-parse) as integers.
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos,
                self.peek().map(|c| (c as char).to_string()).unwrap_or_else(|| "EOF".into())
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{word}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&cp)
                                && self.bytes[self.pos + 1..].first() == Some(&b'\\')
                            {
                                // `parse_hex4` left pos at the last hex digit;
                                // look ahead for a low surrogate.
                                let save = self.pos;
                                self.pos += 1; // last hex digit
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() == Some(b'u') {
                                        let lo = self.parse_hex4()?;
                                        if (0xDC00..0xE000).contains(&lo) {
                                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                            out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                        } else {
                                            out.push('\u{FFFD}');
                                        }
                                    } else {
                                        self.pos = save;
                                        out.push('\u{FFFD}');
                                    }
                                } else {
                                    self.pos = save;
                                    out.push('\u{FFFD}');
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    /// Parses 4 hex digits after `\u`, leaving `pos` on the last digit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for text in ["null", "true", "false", "0", "-17", "1.5", "1e3", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"a": [1, 2, {"b": "x\ny"}], "c": null, "d": -2.25}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&123u64).unwrap(), "123");
        assert_eq!(to_string(&-5i32).unwrap(), "-5");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"dataset": "sift-like", "qps": 123.0});
        assert_eq!(v.get("dataset").and_then(Value::as_str), Some("sift-like"));
        assert_eq!(v.get("qps").and_then(Value::as_f64), Some(123.0));
        let arr = json!([1, 2, 3]);
        assert_eq!(arr.as_array().unwrap().len(), 3);
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn typed_roundtrip_through_text() {
        let hits: Vec<(f32, u32)> = vec![(0.5, 3), (1.25, 9)];
        let text = to_string(&hits).unwrap();
        let back: Vec<(f32, u32)> = from_str(&text).unwrap();
        assert_eq!(back, hits);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé😀");
    }
}
