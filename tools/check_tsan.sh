#!/usr/bin/env bash
# ThreadSanitizer leg over the worker pool and the obs registry.
#
# The targeted binaries are pathweaver-util's unit tests (worker pool
# internals), pathweaver-obs's unit tests (tri-state flags, registry
# interning), and the root concurrency_stress integration tests, which were
# written as the TSan workload: pool work racing flag toggles, snapshots
# racing recording, concurrent metric registration.
#
# -Z sanitizer is nightly-only; like check_miri.sh this degrades to
# skip-with-notice when no nightly toolchain is installed, so the leg is
# advisory where the toolchain is missing and blocking where it exists.

set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly --version >/dev/null 2>&1; then
    echo "check_tsan: SKIPPED — no nightly toolchain available" >&2
    echo "check_tsan: install with 'rustup toolchain install nightly' to enable" >&2
    exit 0
fi

host="$(rustc -vV | sed -n 's/^host: //p')"
if ! rustup +nightly component list 2>/dev/null | grep -q 'rust-src.*(installed)'; then
    echo "check_tsan: SKIPPED — nightly rust-src component missing (needed for -Zbuild-std)" >&2
    exit 0
fi

export RUSTFLAGS="${RUSTFLAGS:+$RUSTFLAGS }-Zsanitizer=thread"
# TSan must see the standard library's own synchronization, so std is
# rebuilt instrumented.
export PATHWEAVER_THREADS="${PATHWEAVER_THREADS:-4}"

cargo +nightly test -Zbuild-std --target "$host" \
    -p pathweaver-util -p pathweaver-obs \
    -p pathweaver --test concurrency_stress
echo "check_tsan: pool + obs clean under ThreadSanitizer"
