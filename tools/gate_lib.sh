# Shared helpers for the blocking CI gates in tools/check_*.sh.
#
# Every gate follows the same shape: build the gate binary against the
# locked, vendored dependency set, run it from the repo root, and leave a
# machine-readable report under target/ for CI to upload. These helpers keep
# that shape in one place so the gates cannot drift apart.
#
# Usage (from a tools/check_*.sh script):
#
#   set -euo pipefail
#   cd "$(dirname "$0")/.."
#   source tools/gate_lib.sh
#
#   gate_build pathweaver-bench check_store
#   gate_run check_store
#   gate_require_file target/store_report.json "check_store must write its report"

# gate_build <package> [bin...] — release build of the named binaries (or
# the whole package when no bins are given). --locked: the lockfile is
# authoritative (all deps are vendored); a drifted Cargo.lock fails loudly
# instead of being rewritten by the gate.
gate_build() {
    local package=$1
    shift
    local args=()
    local bin
    for bin in "$@"; do
        args+=(--bin "$bin")
    done
    cargo build --locked --release -p "$package" ${args[@]+"${args[@]}"}
}

# gate_run <bin> [args...] — run a gate binary from target/release.
gate_run() {
    local bin=$1
    shift
    "./target/release/$bin" "$@"
}

# gate_require_file <path> <hint> — fail loudly when an expected input or
# produced artifact is missing, instead of letting a gate pass vacuously.
gate_require_file() {
    if [[ ! -f "$1" ]]; then
        echo "error: $1 missing — $2" >&2
        exit 1
    fi
}
