#!/usr/bin/env bash
# Blocking invariant-lint gate.
#
# Runs pwlint (crates/lint) over the whole workspace with the committed
# lint.toml policy. Any finding fails the build — violations are fixed or
# explicitly waived (`// lint: allow(<slug>)` at the site, or a [waivers]
# entry in lint.toml), never ignored.
#
# Artifacts: target/lint_report.json (machine-readable findings, uploaded by
# CI next to the bench artifacts) plus human-readable diagnostics on stderr
# when the gate fails.

set -euo pipefail
cd "$(dirname "$0")/.."
source tools/gate_lib.sh

mkdir -p target

gate_build pathweaver-lint

status=0
gate_run pwlint --workspace --format json > target/lint_report.json || status=$?

if [[ $status -ne 0 ]]; then
    echo "pwlint: violations found — human-readable report follows" >&2
    gate_run pwlint --workspace || true
    echo "(machine-readable copy: target/lint_report.json;" >&2
    echo " run 'cargo run -p pathweaver-lint -- --explain RULE' for rationale)" >&2
    exit "$status"
fi

echo "pwlint: workspace clean (report: target/lint_report.json)"
