#!/usr/bin/env bash
# Blocking invariant-lint gate.
#
# Runs pwlint (crates/lint) over the whole workspace with the committed
# lint.toml policy. Any finding fails the build — violations are fixed or
# explicitly waived (`// lint: allow(<slug>)` at the site, or a [waivers]
# entry in lint.toml), never ignored.
#
# The committed tools/lint_baseline.json pins the allowed per-rule finding
# counts (schema_version-checked); any rule exceeding its baseline count
# fails the gate with the named rule IDs. The baseline is empty — new
# violations are fixed or waived at the site, never absorbed by a looser
# baseline.
#
# Artifacts: target/lint_report.json (machine-readable findings, with
# schema_version) and target/lock_graph.dot (the L-rules' lock-acquisition
# graph), both uploaded by CI next to the bench artifacts, plus
# human-readable diagnostics on stderr when the gate fails.

set -euo pipefail
cd "$(dirname "$0")/.."
source tools/gate_lib.sh

mkdir -p target

gate_build pathweaver-lint

status=0
gate_run pwlint --workspace --format json \
    --baseline tools/lint_baseline.json \
    --emit-lock-graph target/lock_graph.dot \
    > target/lint_report.json || status=$?

if [[ $status -ne 0 ]]; then
    echo "pwlint: regressions vs tools/lint_baseline.json — report follows" >&2
    gate_run pwlint --workspace || true
    echo "(machine-readable copy: target/lint_report.json;" >&2
    echo " lock graph: target/lock_graph.dot;" >&2
    echo " run 'cargo run -p pathweaver-lint -- --explain RULE' for rationale)" >&2
    exit "$status"
fi

echo "pwlint: workspace clean vs baseline (report: target/lint_report.json," \
     "lock graph: target/lock_graph.dot)"
