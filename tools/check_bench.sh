#!/usr/bin/env bash
# Perf-regression gate.
#
# Builds the wallclock bench and the check_bench comparator, runs a fresh
# wallclock measurement into target/, and fails when any entry of the
# committed baseline (BENCH_wallclock.json) slowed down by more than the
# tolerance (default 30%). A missing baseline, an empty baseline, a missing
# fresh measurement, or a baseline entry absent from the fresh run all fail
# loudly — the gate never passes vacuously.
#
# Environment:
#   PATHWEAVER_PERF_TOLERANCE   fractional slowdown allowed, e.g. 0.5 = 50%.
#                               Raise it temporarily to land an accepted
#                               slowdown, then commit a regenerated baseline
#                               (cargo run --release --bin wallclock).
#   PATHWEAVER_THREADS          forwarded to the bench (defaults to 2 there).
#
# Artifacts: target/BENCH_wallclock_fresh.json (fresh timings) and
# target/BENCH_metrics.json (metrics summary of the instrumented pass) —
# CI uploads both.

set -euo pipefail
cd "$(dirname "$0")/.."
source tools/gate_lib.sh

BASELINE=BENCH_wallclock.json
FRESH=target/BENCH_wallclock_fresh.json

gate_require_file "$BASELINE" \
    "run 'cargo run --release --bin wallclock' and commit it"

gate_build pathweaver-bench wallclock check_bench

PATHWEAVER_BENCH_OUT="$FRESH" gate_run wallclock
gate_require_file "$FRESH" "wallclock must write the fresh measurement"
gate_run check_bench "$BASELINE" "$FRESH"
