#!/usr/bin/env bash
# Crash-recovery gate for the durable index store.
#
# Builds the check_store corruption matrix and runs it: a seeded,
# deterministic sweep of WAL truncations, WAL bit-flips, segment bit-flips
# and segment truncations over a real durable store. Every case must either
# recover to an exact WAL-prefix state or be rejected with
# StoreError::Corrupt — a panic or a silently wrong search result fails the
# gate.
#
# Environment:
#   PATHWEAVER_STORE_SEED   integer seed for the fuzzed offsets (default
#                           4242 — the committed CI matrix).
#   PATHWEAVER_STORE_OUT    report path (default target/store_report.json) —
#                           CI uploads it as an artifact.
#
# Artifact: target/store_report.json (case counts and any failures).

set -euo pipefail
cd "$(dirname "$0")/.."
source tools/gate_lib.sh

gate_build pathweaver-bench check_store
gate_run check_store
gate_require_file "${PATHWEAVER_STORE_OUT:-target/store_report.json}" \
    "check_store must write its report"
