#!/usr/bin/env bash
# Dependency allowlist check (cargo-deny substitute).
#
# The build environment has no crates.io access: every external dependency is
# a vendored offline shim under vendor/, wired through workspace path
# dependencies. This script fails CI when either
#
#   1. a package outside the approved external set (or the first-party
#      pathweaver crates) appears in Cargo.lock, or
#   2. any package resolves to a remote registry instead of a local path
#      (a `source = ...` entry in Cargo.lock).
#
# Keeping the check lockfile-based means it needs no network and no extra
# tooling — `bash` and `grep` only.

set -euo pipefail
cd "$(dirname "$0")/.."

LOCKFILE=Cargo.lock
if [[ ! -f "$LOCKFILE" ]]; then
    echo "error: $LOCKFILE missing — run 'cargo generate-lockfile' and commit it" >&2
    exit 1
fi

# Approved external dependencies (ISSUE/ROADMAP policy). serde_derive is the
# proc-macro half of the vendored serde shim, not an additional dependency.
ALLOWED="rand proptest criterion crossbeam parking_lot bytes serde serde_json serde_derive"

status=0

while IFS= read -r name; do
    case "$name" in
        pathweaver|pathweaver-*) continue ;;
    esac
    ok=0
    for a in $ALLOWED; do
        if [[ "$name" == "$a" ]]; then
            ok=1
            break
        fi
    done
    if [[ "$ok" == 0 ]]; then
        echo "error: dependency '$name' is not in the approved list" >&2
        status=1
    fi
done < <(grep '^name = ' "$LOCKFILE" | sed 's/^name = "\(.*\)"$/\1/')

if grep -q '^source = ' "$LOCKFILE"; then
    echo "error: Cargo.lock resolves packages from a remote source; all" >&2
    echo "       dependencies must be local path crates (vendor/ shims)" >&2
    grep -B2 '^source = ' "$LOCKFILE" >&2
    status=1
fi

if [[ "$status" == 0 ]]; then
    echo "check_deps: all $(grep -c '^name = ' "$LOCKFILE") packages within policy"
fi
exit "$status"
