#!/usr/bin/env bash
# Miri leg: interpret the unsafe-heavy crates' unit tests under Miri.
#
# pwlint's U-rules prove the unsafe sites are *documented*; Miri checks the
# arguments are *true* (no UB in the pool's lifetime-erased job pointers or
# the aligned matrix storage). SIMD intrinsics cannot run under Miri, so the
# run forces scalar dispatch and the kernels' `cfg(miri)` guards skip
# feature detection.
#
# Degrades to skip-with-notice when a nightly toolchain with Miri is not
# installed (the offline CI image may not carry one): exits 0 after printing
# the notice, so the leg is advisory where Miri is unavailable and blocking
# where it is.

set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly miri --version >/dev/null 2>&1; then
    echo "check_miri: SKIPPED — no nightly toolchain with Miri available" >&2
    echo "check_miri: install with 'rustup +nightly component add miri' to enable" >&2
    exit 0
fi

export PATHWEAVER_SIMD=scalar
export MIRIFLAGS="${MIRIFLAGS:---disable-isolation}"

cargo +nightly miri test -p pathweaver-util -p pathweaver-vector
echo "check_miri: pathweaver-util + pathweaver-vector clean under Miri"
