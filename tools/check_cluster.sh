#!/usr/bin/env bash
# Fault-injection gate for the multi-node cluster layer.
#
# Builds the check_cluster fault matrix and runs it: a seeded sweep of
# replica kills mid-batch, torn response frames, timeout storms and their
# combinations over real local clusters (in-process channel transport plus
# TCP loopback cases). Every case must return the exact merged top-k —
# bit-identical to the single-node reference — with zero failed queries
# while any live replica remains; a 1-node cluster must additionally match
# serve_once down to the simulated-makespan bits.
#
# Environment:
#   PATHWEAVER_CLUSTER_SEED   integer seed for the fuzzed fault ordinals
#                             (default 77 — the committed CI matrix).
#   PATHWEAVER_CLUSTER_OUT    report path (default
#                             target/cluster_report.json) — CI uploads it
#                             as an artifact.
#
# Artifact: target/cluster_report.json (case counts, queries served,
# failovers observed, and any failures).

set -euo pipefail
cd "$(dirname "$0")/.."
source tools/gate_lib.sh

gate_build pathweaver-bench check_cluster
gate_run check_cluster
gate_require_file "${PATHWEAVER_CLUSTER_OUT:-target/cluster_report.json}" \
    "check_cluster must write its report"
